"""Futures and promises.

These mirror the HPX constructs the paper builds on: a *future* is "a
computational result that is initially unknown but becomes available at a
later time"; threads access it with ``future.get()`` and only the threads
that depend on the value are suspended (Section III-A of the paper).

The implementation is thread-safe.  Continuations registered with
:meth:`Future.then` run on the thread that satisfies the future (or inline if
the future is already ready), which is how chained dataflow nodes propagate
without any global barrier.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Generic, Iterable, Optional, Sequence, TypeVar

from repro.errors import (
    BrokenPromiseError,
    FutureAlreadySatisfiedError,
    FutureError,
    FutureNotReadyError,
)

__all__ = [
    "Promise",
    "Future",
    "SharedFuture",
    "HandleFuture",
    "make_ready_future",
    "make_exceptional_future",
    "when_all",
    "when_any",
]

T = TypeVar("T")
_UNSET = object()


class _SharedState(Generic[T]):
    """State shared between a promise and the future(s) observing it."""

    __slots__ = ("_lock", "_event", "_value", "_exception", "_callbacks")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._event = threading.Event()
        self._value: Any = _UNSET
        self._exception: Optional[BaseException] = None
        self._callbacks: list[Callable[[], None]] = []

    # -- producer side -------------------------------------------------------
    def set_value(self, value: T) -> None:
        with self._lock:
            if self._event.is_set():
                raise FutureAlreadySatisfiedError("future already satisfied")
            self._value = value
            callbacks = self._callbacks
            self._callbacks = []
            self._event.set()
        for callback in callbacks:
            callback()

    def set_exception(self, exception: BaseException) -> None:
        if not isinstance(exception, BaseException):
            raise TypeError(f"expected an exception instance, got {exception!r}")
        with self._lock:
            if self._event.is_set():
                raise FutureAlreadySatisfiedError("future already satisfied")
            self._exception = exception
            callbacks = self._callbacks
            self._callbacks = []
            self._event.set()
        for callback in callbacks:
            callback()

    # -- consumer side -------------------------------------------------------
    def is_ready(self) -> bool:
        return self._event.is_set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        return self._event.wait(timeout)

    def result(self, timeout: Optional[float] = None) -> T:
        if not self._event.wait(timeout):
            raise FutureNotReadyError("future not ready within timeout")
        if self._exception is not None:
            raise self._exception
        return self._value  # type: ignore[return-value]

    def exception(self) -> Optional[BaseException]:
        if not self._event.is_set():
            raise FutureNotReadyError("future not ready")
        return self._exception

    def add_callback(self, callback: Callable[[], None]) -> None:
        run_now = False
        with self._lock:
            if self._event.is_set():
                run_now = True
            else:
                self._callbacks.append(callback)
        if run_now:
            callback()


class Promise(Generic[T]):
    """Producer side of a future (``hpx::promise``)."""

    def __init__(self) -> None:
        self._state: _SharedState[T] = _SharedState()
        self._future_retrieved = False

    def get_future(self) -> "Future[T]":
        """Return the future associated with this promise.

        Like HPX, the future may only be retrieved once; use
        :meth:`Future.share` for multiple consumers.
        """
        if self._future_retrieved:
            raise FutureError("future already retrieved from this promise")
        self._future_retrieved = True
        return Future(self._state)

    def set_value(self, value: T) -> None:
        """Make the future ready with ``value``."""
        self._state.set_value(value)

    def set_exception(self, exception: BaseException) -> None:
        """Make the future ready with an exception."""
        self._state.set_exception(exception)

    def is_ready(self) -> bool:
        """True once a value or exception has been provided."""
        return self._state.is_ready()

    def break_promise(self) -> None:
        """Abandon the promise; waiting consumers see :class:`BrokenPromiseError`."""
        if not self._state.is_ready():
            self._state.set_exception(BrokenPromiseError("promise was broken"))


class Future(Generic[T]):
    """Single-consumer future (``hpx::future``).

    ``get()`` blocks until the value is available and *consumes* the future
    (subsequent calls raise), mirroring HPX move semantics.  Use
    :meth:`share` to obtain a :class:`SharedFuture` that can be read many
    times -- the modified ``op_par_loop`` in the paper returns
    ``hpx::shared_future<op_dat>`` for exactly this reason.
    """

    def __init__(self, state: Optional[_SharedState[T]] = None) -> None:
        self._state = state if state is not None else _SharedState()
        self._consumed = False

    # -- state queries ---------------------------------------------------------
    def valid(self) -> bool:
        """True while the future still refers to a shared state."""
        return not self._consumed

    def is_ready(self) -> bool:
        """Non-blocking readiness check."""
        self._check_valid()
        return self._state.is_ready()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until ready (or timeout); returns readiness."""
        self._check_valid()
        return self._state.wait(timeout)

    # -- value access ------------------------------------------------------------
    def get(self, timeout: Optional[float] = None) -> T:
        """Block until ready and return the value, consuming the future."""
        self._check_valid()
        value = self._state.result(timeout)
        self._consumed = True
        return value

    def exception(self) -> Optional[BaseException]:
        """The stored exception, if the future is ready and failed."""
        self._check_valid()
        return self._state.exception()

    def share(self) -> "SharedFuture[T]":
        """Convert into a shared future (this future becomes invalid)."""
        self._check_valid()
        state = self._state
        self._consumed = True
        return SharedFuture(state)

    # -- composition ---------------------------------------------------------------
    def then(self, continuation: Callable[["Future[T]"], Any]) -> "Future[Any]":
        """Attach a continuation; returns a future of its result.

        The continuation receives *this* future (already ready) and runs on
        whichever thread satisfied it, or immediately if already ready.
        """
        self._check_valid()
        promise: Promise[Any] = Promise()
        state = self._state
        source: Future[T] = Future(state)

        def run() -> None:
            try:
                promise.set_value(continuation(source))
            except BaseException as exc:  # noqa: BLE001 - propagate into the future
                promise.set_exception(exc)

        state.add_callback(run)
        self._consumed = True
        return promise.get_future()

    def add_done_callback(self, callback: Callable[[], None]) -> None:
        """Run ``callback`` once the future is ready (immediately if it is)."""
        self._check_valid()
        self._state.add_callback(callback)

    def _check_valid(self) -> None:
        if self._consumed:
            raise FutureError("future is no longer valid (already consumed)")

    # internal access for dataflow/when_all
    @property
    def _shared_state(self) -> _SharedState[T]:
        return self._state


class SharedFuture(Generic[T]):
    """Multi-consumer future (``hpx::shared_future``); ``get()`` never consumes."""

    def __init__(self, state: Optional[_SharedState[T]] = None) -> None:
        self._state = state if state is not None else _SharedState()

    def valid(self) -> bool:
        """Shared futures always remain valid."""
        return True

    def is_ready(self) -> bool:
        """Non-blocking readiness check."""
        return self._state.is_ready()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until ready (or timeout); returns readiness."""
        return self._state.wait(timeout)

    def get(self, timeout: Optional[float] = None) -> T:
        """Block until ready and return the value (repeatable)."""
        return self._state.result(timeout)

    def exception(self) -> Optional[BaseException]:
        """The stored exception, if the future is ready and failed."""
        return self._state.exception()

    def then(self, continuation: Callable[["SharedFuture[T]"], Any]) -> Future[Any]:
        """Attach a continuation; returns a future of its result."""
        promise: Promise[Any] = Promise()

        def run() -> None:
            try:
                promise.set_value(continuation(self))
            except BaseException as exc:  # noqa: BLE001
                promise.set_exception(exc)

        self._state.add_callback(run)
        return promise.get_future()

    def add_done_callback(self, callback: Callable[[], None]) -> None:
        """Run ``callback`` once the future is ready (immediately if it is)."""
        self._state.add_callback(callback)

    @property
    def _shared_state(self) -> _SharedState[T]:
        return self._state


class HandleFuture(SharedFuture[T]):
    """A shared future whose *handle* is known eagerly.

    The threaded ``op_par_loop`` returns an ``op_dat`` whose identity exists
    the moment the loop is scheduled, while the data behind it only becomes
    valid once the loop's last chunk has merged.  ``handle`` exposes that
    identity without blocking -- later loops can be *declared* against it
    immediately (preserving asynchrony, Fig. 9/10 of the paper) -- and
    ``get()``/``wait()`` keep real completion semantics: they block until the
    producer satisfied the underlying promise.
    """

    def __init__(self, handle: T, state: Optional[_SharedState[T]] = None) -> None:
        super().__init__(state)
        self.handle = handle

    @classmethod
    def from_promise(cls, handle: T, promise: "Promise[T]") -> "HandleFuture[T]":
        """A handle future completing when ``promise`` is satisfied."""
        return cls(handle, promise.get_future()._shared_state)


AnyFuture = (Future, SharedFuture)


def make_ready_future(value: T) -> Future[T]:
    """A future that is already satisfied with ``value``."""
    promise: Promise[T] = Promise()
    promise.set_value(value)
    return promise.get_future()


def make_exceptional_future(exception: BaseException) -> Future[Any]:
    """A future that is already satisfied with an exception."""
    promise: Promise[Any] = Promise()
    promise.set_exception(exception)
    return promise.get_future()


def when_all(*futures: "Future | SharedFuture | Iterable") -> Future[list]:
    """A future of the list of input futures, ready when all of them are.

    Accepts futures directly or a single iterable of futures.  The resulting
    list contains the input futures themselves (as in HPX); combine with
    :func:`repro.runtime.dataflow.unwrapped` to get values.
    """
    flat = _flatten_futures(futures)
    promise: Promise[list] = Promise()
    if not flat:
        promise.set_value([])
        return promise.get_future()

    remaining = len(flat)
    lock = threading.Lock()

    def one_ready() -> None:
        nonlocal remaining
        with lock:
            remaining -= 1
            done = remaining == 0
        if done:
            promise.set_value(list(flat))

    for future in flat:
        future._shared_state.add_callback(one_ready)
    return promise.get_future()


def when_any(*futures: "Future | SharedFuture | Iterable") -> Future[tuple[int, object]]:
    """A future of ``(index, future)`` for the first input future to become ready."""
    flat = _flatten_futures(futures)
    if not flat:
        raise FutureError("when_any requires at least one future")
    promise: Promise[tuple[int, object]] = Promise()
    satisfied = threading.Event()

    def make_callback(index: int, future: object) -> Callable[[], None]:
        def callback() -> None:
            if not satisfied.is_set():
                satisfied.set()
                try:
                    promise.set_value((index, future))
                except FutureAlreadySatisfiedError:
                    pass

        return callback

    for index, future in enumerate(flat):
        future._shared_state.add_callback(make_callback(index, future))
    return promise.get_future()


def _flatten_futures(items: Sequence) -> list:
    flat: list = []
    for item in items:
        if isinstance(item, AnyFuture):
            flat.append(item)
        elif isinstance(item, Iterable) and not isinstance(item, (str, bytes)):
            for sub in item:
                if not isinstance(sub, AnyFuture):
                    raise FutureError(f"when_all/when_any received a non-future: {sub!r}")
                flat.append(sub)
        else:
            raise FutureError(f"when_all/when_any received a non-future: {item!r}")
    return flat
