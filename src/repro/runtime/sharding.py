"""Sharded sets across address spaces: owned + halo partitions per worker.

The ``processes`` engine shares one coherent ``multiprocessing.shared_memory``
segment per dat, so every worker sees every element -- convenient, but it
caps the design at one box and ships no information about *which* elements a
chunk actually needs.  The chunk-DAG already knows: the dependency tracker's
per-(dat, access) :class:`~repro.op2.intervals.IntervalSet` summaries are an
exact element-granular footprint of every chunk.  This module turns those
summaries into a distributed-memory execution model on the same seam:

* **Partitioning** (:class:`ShardPartition`): each :class:`~repro.op2.set.OpSet`
  is cut into ``num_workers`` contiguous *owned* ranges; a chunk is pinned to
  the worker owning its start index.  Ownership is advisory placement -- data
  freshness follows actual writes, so chunks straddling cuts and indirect
  dats need no special-casing.
* **Per-shard storage** (:class:`~repro.op2.shm.ShardedArena`): every dat gets
  one full-extent segment per worker plus a parent-owned *home* segment.
  Global element numbering stays valid in every address space; the OS backs
  pages lazily, so each worker's physical footprint is its owned region plus
  halo.
* **Interval-exact halo exchange** (:class:`HaloDirectory`): the parent keeps,
  per dat, which shard holds the freshest copy of every run (``fresh``) and
  which runs each shard has locally valid (``valid``).  A chunk's missing
  runs -- and only those -- ride inside its compute/merge RPC as *halo
  entries*, batched with any deferred declarations, and are applied
  worker-side before the gather/commit.  READ/RW halo lands at compute time
  (WAR edges protect the source until the reader commits); increment halo
  lands at *merge* time, because same-loop increment chunks are ordered only
  by the merge chain and the fetched base values must already include every
  earlier commit.

The engine is bit-identical to serial execution: chunk decomposition, merge
chaining and reduction fold order are exactly the ``processes`` engine's, and
halo copies move committed values only, along dependency edges the tracker
already enforces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Optional

import numpy as np

from repro.engines.base import EngineCapabilities
from repro.op2.intervals import IntervalSet
from repro.runtime.process_pool import ProcessChunkEngine, ProcessPool

__all__ = ["ShardPartition", "HaloDirectory", "ShardedChunkEngine"]


# ---------------------------------------------------------------------------
# Partitioning
# ---------------------------------------------------------------------------
class ShardPartition:
    """Contiguous equal cuts of each set across ``num_shards`` workers."""

    def __init__(self, num_shards: int) -> None:
        self.num_shards = num_shards
        self._cuts: dict[int, np.ndarray] = {}

    def cuts(self, set_id: int, size: int) -> np.ndarray:
        """The ``num_shards + 1`` cut offsets partitioning ``[0, size)``."""
        cached = self._cuts.get(set_id)
        if cached is None:
            cached = np.linspace(0, size, self.num_shards + 1).astype(np.int64)
            self._cuts[set_id] = cached
        return cached

    def shard_of(self, set_id: int, size: int, index: int) -> int:
        """The shard owning element ``index`` of the set."""
        cuts = self.cuts(set_id, size)
        shard = int(np.searchsorted(cuts, index, side="right")) - 1
        return min(max(shard, 0), self.num_shards - 1)


# ---------------------------------------------------------------------------
# Halo directory
# ---------------------------------------------------------------------------
@dataclass
class _FreshEntry:
    """Runs whose freshest copy lives on ``holder`` (committed by ``ready``)."""

    runs: IntervalSet
    holder: int
    ready: Optional[int]


@dataclass
class _ValidEntry:
    """Runs a shard holds locally current (available once ``ready`` ran)."""

    runs: IntervalSet
    ready: Optional[int]


class HaloDirectory:
    """Parent-side bookkeeping of where every run of every dat is current.

    Two structures per dat, both lists of interval runs:

    * ``fresh``: a partition of ``[0, size)`` into entries ``(runs, holder,
      ready)`` -- the shard holding the latest committed value of each run
      and the merge task that commits it.  Initially everything is fresh on
      the *home* shard (the parent's segment).
    * ``valid[shard]``: entries ``(runs, ready)`` -- runs whose local copy on
      ``shard`` matches ``fresh`` (either written there or fetched), current
      once task ``ready`` completed.

    ``plan_read`` computes the *minimal* fetch for a chunk: runs the shard
    already holds valid cost nothing (only a dependency on the task that made
    them valid); the rest is sourced per fresh entry.  ``record_write``
    moves freshness to the writing shard and invalidates every other shard's
    overlapping runs.
    """

    def __init__(self, num_shards: int) -> None:
        self.num_shards = num_shards
        self.home = num_shards
        self._fresh: dict[int, list[_FreshEntry]] = {}
        self._valid: dict[int, dict[int, list[_ValidEntry]]] = {}

    def register_dat(self, dat_id: int, size: int) -> None:
        """(Re-)register a dat: everything fresh and valid on home only.

        Also the reset path for re-adopted dats (a fresh segment family means
        every worker copy is gone) and for parent writes detected by version
        reconciliation.
        """
        if size > 0:
            full = IntervalSet.from_range(0, size - 1)
            self._fresh[dat_id] = [_FreshEntry(full, self.home, None)]
            self._valid[dat_id] = {self.home: [_ValidEntry(full, None)]}
        else:
            self._fresh[dat_id] = []
            self._valid[dat_id] = {self.home: []}

    def known(self, dat_id: int) -> bool:
        """True once ``dat_id`` has been registered."""
        return dat_id in self._fresh

    def parent_write(self, dat_id: int, size: int) -> None:
        """The parent mutated the dat's home view: all worker copies stale."""
        self.register_dat(dat_id, size)

    def plan_read(
        self, dat_id: int, shard: int, needed: IntervalSet
    ) -> tuple[list[tuple[int, IntervalSet]], set[int], Optional[IntervalSet]]:
        """Minimal fetch plan for ``shard`` to read ``needed`` runs.

        Returns ``(fetches, deps, missing)``: per-source fetch runs, the task
        ids the reader must wait for (producers of sourced runs and of
        already-valid overlapping runs), and the runs that were missing
        locally -- the caller marks them valid with the fetching task's id
        once it is known.
        """
        deps: set[int] = set()
        missing: Optional[IntervalSet] = needed
        for entry in self._valid.get(dat_id, {}).get(shard, []):
            if missing is None:
                break
            overlap = entry.runs.intersection(missing)
            if overlap is None:
                continue
            if entry.ready is not None:
                deps.add(entry.ready)
            missing = missing.difference(entry.runs)
        fetches: list[tuple[int, IntervalSet]] = []
        if missing is not None:
            for entry in self._fresh.get(dat_id, []):
                part = entry.runs.intersection(missing)
                if part is None:
                    continue
                if entry.holder == shard:
                    # The invariant "fresh on s implies valid on s" makes
                    # this unreachable; degrade to a dependency, never a
                    # self-copy.
                    if entry.ready is not None:
                        deps.add(entry.ready)
                    continue
                if entry.ready is not None:
                    deps.add(entry.ready)
                fetches.append((entry.holder, part))
        return fetches, deps, missing

    def mark_valid(
        self, dat_id: int, shard: int, runs: Optional[IntervalSet], ready: Optional[int]
    ) -> None:
        """Record that ``shard`` holds ``runs`` current once ``ready`` ran."""
        if runs is None:
            return
        self._valid.setdefault(dat_id, {}).setdefault(shard, []).append(
            _ValidEntry(runs, ready)
        )

    def record_write(
        self, dat_id: int, shard: int, runs: IntervalSet, merge_id: Optional[int]
    ) -> None:
        """``shard`` commits ``runs`` at ``merge_id``: freshness moves there."""
        fresh = []
        for entry in self._fresh.get(dat_id, []):
            remainder = entry.runs.difference(runs)
            if remainder is not None:
                fresh.append(_FreshEntry(remainder, entry.holder, entry.ready))
        fresh.append(_FreshEntry(runs, shard, merge_id))
        self._fresh[dat_id] = fresh
        valid = self._valid.setdefault(dat_id, {})
        for other, entries in valid.items():
            if other == shard:
                continue
            valid[other] = [
                _ValidEntry(remainder, entry.ready)
                for entry in entries
                if (remainder := entry.runs.difference(runs)) is not None
            ]
        valid.setdefault(shard, []).append(_ValidEntry(runs, merge_id))

    def fresh_remote(self, dat_id: int) -> list[tuple[int, IntervalSet]]:
        """Fresh runs *not* held by home: what a parent sync must copy in."""
        return [
            (entry.holder, entry.runs)
            for entry in self._fresh.get(dat_id, [])
            if entry.holder != self.home
        ]

    def parent_synced(self, dat_id: int) -> None:
        """Home caught up: everything fresh on home; worker copies stay valid."""
        entries = self._fresh.get(dat_id)
        if not entries:
            return
        full = entries[0].runs
        for entry in entries[1:]:
            full = full.union(entry.runs)
        self._fresh[dat_id] = [_FreshEntry(full, self.home, None)]
        valid = self._valid.setdefault(dat_id, {})
        valid[self.home] = [_ValidEntry(full, None)]
        self._compact_valid(dat_id)

    def quiesce(self) -> None:
        """After a drain: every recorded task completed, so ready ids are
        moot -- drop them and compact entry lists (they grow per chunk
        between drains)."""
        for dat_id, entries in self._fresh.items():
            by_holder: dict[int, IntervalSet] = {}
            for entry in entries:
                held = by_holder.get(entry.holder)
                by_holder[entry.holder] = (
                    entry.runs if held is None else held.union(entry.runs)
                )
            self._fresh[dat_id] = [
                _FreshEntry(runs, holder, None) for holder, runs in by_holder.items()
            ]
            self._compact_valid(dat_id)

    def _compact_valid(self, dat_id: int) -> None:
        valid = self._valid.get(dat_id, {})
        for shard, entries in valid.items():
            if len(entries) <= 1 and all(e.ready is None for e in entries):
                continue
            merged: Optional[IntervalSet] = None
            for entry in entries:
                merged = entry.runs if merged is None else merged.union(entry.runs)
            valid[shard] = [] if merged is None else [_ValidEntry(merged, None)]

    def dat_ids(self) -> list[int]:
        """Registered dat ids (diagnostics)."""
        return sorted(self._fresh)


def _wire_entries(
    dat_id: int, fetches: list[tuple[int, IntervalSet]]
) -> list[tuple[int, int, list[int], list[int]]]:
    """Fetch plan -> picklable RPC halo entries (inclusive run endpoints)."""
    return [
        (dat_id, src, runs.starts.tolist(), runs.stops.tolist())
        for src, runs in fetches
    ]


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------
class ShardedChunkEngine(ProcessChunkEngine):
    """Parent-side driver of ``engine="sharded"``.

    Extends :class:`ProcessChunkEngine` with per-shard dat segments, chunk
    pinning by set partition, interval-exact halo exchange planned off the
    RPC path, and deferred (batched) declaration delivery.  The parent's view
    of a dat is only current after :meth:`sync_parent_dats`; contexts call it
    at drain points via the ``partitioned_dats`` capability.
    """

    capabilities = EngineCapabilities(
        shared_address_space=False,
        needs_kernel_registry=True,
        supports_global_write=False,
        separate_merge_channel=True,
        partitioned_dats=True,
    )

    def __init__(
        self,
        num_workers: int,
        *,
        name: str = "hpx-chunk-shards",
        trace: bool = False,
        start_method: Optional[str] = None,
        prefer_vectorized: bool = True,
    ) -> None:
        from repro.op2.shm import ShardedArena

        # Deliberately not super().__init__(): the arena type differs.
        self.arena = ShardedArena(num_workers, name_prefix=name)
        self.pool = ProcessPool(
            num_workers, name=name, trace=trace, start_method=start_method
        )
        self.prefer_vectorized = prefer_vectorized
        self._loop_keys: dict[tuple, str] = {}
        self._active: Optional[tuple[Any, str, list, Callable[[list], None]]] = None
        self.partition = ShardPartition(num_workers)
        self.directory = HaloDirectory(num_workers)
        #: dat_id -> live OpDat (sync targets, byte accounting)
        self._dats: dict[int, Any] = {}
        #: dat_id -> arena adoption epoch the directory state belongs to
        self._dat_epochs: dict[int, int] = {}
        #: dat_id -> version the parent is expected to report if it has not
        #: written the dat since the engine last looked
        self._expected_versions: dict[int, int] = {}
        #: halo accounting: exact bytes shipped vs the whole-dat counterfactual
        self._halo_bytes = 0
        self._whole_dat_bytes = 0
        self._halo_fetches = 0

    # -- declarations (deferred / per-worker) ----------------------------------
    def _declare(self, declarations: list[dict]) -> None:
        # Dat families differ per worker (each attaches its own segment);
        # maps are identical everywhere.  Either way the messages are
        # *queued*: they ride ahead of the next chunk RPC per worker in one
        # batch, keeping declaration round trips off the submission path.
        for index in range(self.pool.num_workers):
            specs = [
                {**spec, "segment": spec["segments"][index]}
                if spec.get("segments")
                else spec
                for spec in declarations
            ]
            self.pool.queue_message(index, ("declare", specs))

    def _register(self, loop_key: str, spec: dict) -> None:
        self.pool.queue_broadcast(("register_loop", loop_key, spec))

    # -- parent-write reconciliation -------------------------------------------
    def _track_dats(self, loop: Any) -> None:
        """Register/refresh directory state for the loop's dats.

        Detects (a) re-adopted dats -- a new segment family invalidates every
        worker copy -- and (b) parent-side writes between loops, via the dat
        version counter: any version the engine did not predict means the
        parent (or an eager fallback loop) mutated the home view.
        """
        for arg in loop.args:
            dat = arg.dat
            if dat is None:
                continue
            dat_id = dat.dat_id
            self._dats[dat_id] = dat
            epoch = self.arena.epoch("dat", dat_id)
            if self._dat_epochs.get(dat_id) != epoch or not self.directory.known(
                dat_id
            ):
                self._dat_epochs[dat_id] = epoch
                self.directory.register_dat(dat_id, dat.dataset.size)
                self._expected_versions[dat_id] = dat.version
            elif self._expected_versions.get(dat_id) != dat.version:
                self.directory.parent_write(dat_id, dat.dataset.size)
                self._expected_versions[dat_id] = dat.version

    def _finish_active_loop(self) -> None:
        """Fold the finished loop's version bumps into the expectations.

        The pipeline bumps each written dat once per writing argument *after*
        submitting all chunks, so the engine predicts those bumps here -- at
        the next loop switch or drain -- and treats any other movement as a
        parent write.
        """
        if self._active is None:
            return
        loop = self._active[0]
        self._active = None
        for arg in loop.args:
            if arg.dat is not None and arg.access.writes:
                dat_id = arg.dat.dat_id
                if dat_id in self._expected_versions:
                    self._expected_versions[dat_id] += 1

    # -- chunk submission --------------------------------------------------------
    def _arg_summary(self, arg: Any, start: int, stop: int) -> IntervalSet:
        if arg.is_indirect:
            return arg.map.chunk_summary(arg.map_index, start, stop)
        return IntervalSet.from_range(start, stop - 1)

    def submit_loop_chunk(
        self,
        loop: Any,
        start: int,
        stop: int,
        *,
        deps: Iterable[int] = (),
        after: Optional[int] = None,
    ) -> tuple[int, int]:
        from repro.op2.access import AccessMode

        if self._active is None or self._active[0] is not loop:
            self._finish_active_loop()
            loop_key, gbl_values, apply_deltas = self._prepare_loop(loop)
            self._track_dats(loop)
            self._active = (loop, loop_key, gbl_values, apply_deltas)
        _, loop_key, gbl_values, apply_deltas = self._active

        iterset = loop.iterset
        shard = self.partition.shard_of(iterset.set_id, iterset.size, start)

        # Per-dat access footprints of this chunk, split by *when* the halo
        # must land: READ/RW gathers happen at compute time, increment bases
        # at merge time, WRITE-only footprints fetch nothing.
        compute_needs: dict[int, IntervalSet] = {}
        merge_needs: dict[int, IntervalSet] = {}
        writes: dict[int, IntervalSet] = {}
        for arg in loop.args:
            if arg.dat is None or start >= stop:
                continue
            summary = self._arg_summary(arg, start, stop)
            dat_id = arg.dat.dat_id
            access = arg.access
            if access in (AccessMode.READ, AccessMode.RW):
                held = compute_needs.get(dat_id)
                compute_needs[dat_id] = summary if held is None else held.union(summary)
            if access.is_reduction:
                held = merge_needs.get(dat_id)
                merge_needs[dat_id] = summary if held is None else held.union(summary)
            if access.writes:
                held = writes.get(dat_id)
                writes[dat_id] = summary if held is None else held.union(summary)

        compute_deps: set[int] = set(deps)
        merge_deps: set[int] = set()
        halo: list[tuple] = []
        merge_halo: list[tuple] = []
        mark_compute: list[tuple[int, IntervalSet]] = []
        mark_merge: list[tuple[int, IntervalSet]] = []
        for dat_id, needed in compute_needs.items():
            fetches, plan_deps, missing = self.directory.plan_read(
                dat_id, shard, needed
            )
            compute_deps |= plan_deps
            halo.extend(_wire_entries(dat_id, fetches))
            self._account(dat_id, fetches)
            if missing is not None:
                mark_compute.append((dat_id, missing))
        for dat_id, needed in merge_needs.items():
            fetches, plan_deps, missing = self.directory.plan_read(
                dat_id, shard, needed
            )
            merge_deps |= plan_deps
            merge_halo.extend(_wire_entries(dat_id, fetches))
            self._account(dat_id, fetches)
            if missing is not None:
                mark_merge.append((dat_id, missing))

        compute_id, merge_id = self.pool.submit_loop_chunk(
            loop_key,
            start,
            stop,
            gbl_values=gbl_values,
            prefer_vectorized=self.prefer_vectorized,
            deps=sorted(compute_deps),
            after=after,
            on_deltas=apply_deltas,
            worker=shard,
            halo=tuple(halo),
            merge_halo=tuple(merge_halo),
            extra_merge_deps=sorted(merge_deps),
        )

        for dat_id, missing in mark_compute:
            self.directory.mark_valid(dat_id, shard, missing, compute_id)
        for dat_id, missing in mark_merge:
            self.directory.mark_valid(dat_id, shard, missing, merge_id)
        for dat_id, written in writes.items():
            self.directory.record_write(dat_id, shard, written, merge_id)
        return compute_id, merge_id

    def _account(self, dat_id: int, fetches: list[tuple[int, IntervalSet]]) -> None:
        if not fetches:
            return
        dat = self._dats[dat_id]
        element_bytes = dat.dtype.itemsize * dat.dim
        self._halo_bytes += sum(runs.count for _src, runs in fetches) * element_bytes
        # The counterfactual a coherent single-segment engine pays: the whole
        # dat crosses to the consuming address space whenever any of it must.
        self._whole_dat_bytes += dat.dataset.size * element_bytes
        self._halo_fetches += len(fetches)

    def halo_stats(self) -> dict[str, int]:
        """Exact halo traffic vs the whole-dat counterfactual (bytes)."""
        return {
            "halo_bytes": self._halo_bytes,
            "whole_dat_bytes": self._whole_dat_bytes,
            "halo_fetches": self._halo_fetches,
        }

    # -- parent synchronisation --------------------------------------------------
    def wait_all(self, timeout: Optional[float] = None) -> None:
        """Drain, then make the parent's home views coherent.

        The coherent-after-drain contract is what applications already rely
        on under ``processes`` (reading ``dat.data`` after a reduction
        barrier), so a drain lands every worker-fresh run in the home
        segments.  These are parent-side segment-to-segment copies, not
        worker halo traffic; worker-side valid runs stay intact, so
        steady-state loops re-fetch nothing afterwards.
        """
        self.pool.wait_all(timeout=timeout)
        self._finish_active_loop()
        # Every outstanding task completed: readiness ids are history, and
        # the per-chunk entry lists can be collapsed.
        self.directory.quiesce()
        self._sync_home()

    def sync_parent_dats(self) -> None:
        """Bring the parent's home views up to date with worker commits.

        Called by contexts at parent-observation points (drains before eager
        fallback loops, chain finish/abort); equivalent to a drain.
        """
        if self.pool.is_shutdown:
            return
        self.wait_all()

    def _sync_home(self) -> None:
        for dat_id in self.directory.dat_ids():
            remote = self.directory.fresh_remote(dat_id)
            if remote:
                home = self.arena.shard_view(dat_id, self.arena.home_shard)
                for holder, runs in remote:
                    source = self.arena.shard_view(dat_id, holder)
                    for lo, hi in zip(runs.starts, runs.stops):
                        home[lo : hi + 1] = source[lo : hi + 1]
            self.directory.parent_synced(dat_id)

    def shutdown(self, wait: bool = True) -> None:
        """Drain, stop workers, land fresh runs in the parent, release."""
        try:
            self.pool.shutdown(wait=wait)
        finally:
            try:
                # Best-effort on failure paths: an aborted run's values are
                # unspecified, but the home view must still be consistent
                # enough for the arena to hand back.
                self._finish_active_loop()
                self._sync_home()
            except Exception:  # pragma: no cover - defensive
                pass
            self.arena.release()
