"""HPX-thread (task) abstraction.

HPX schedules lightweight user-level threads; a scheduler decides which OS
worker runs each of them.  In this reproduction a :class:`Task` is the
lightweight-thread descriptor: the callable plus book-keeping (state,
identity, the promise its result flows into).  Schedulers in
:mod:`repro.runtime.scheduler` consume these descriptors.
"""

from __future__ import annotations

import enum
import itertools
import threading
from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import RuntimeStateError
from repro.runtime.future import Future, Promise

__all__ = ["ThreadState", "Task", "TaskStats"]

_task_ids = itertools.count()


class ThreadState(enum.Enum):
    """Lifecycle states of an HPX lightweight thread."""

    PENDING = "pending"
    ACTIVE = "active"
    SUSPENDED = "suspended"
    TERMINATED = "terminated"
    FAILED = "failed"


@dataclass
class TaskStats:
    """Aggregate counters a scheduler keeps about the tasks it ran."""

    spawned: int = 0
    executed: int = 0
    failed: int = 0
    stolen: int = 0

    def snapshot(self) -> dict[str, int]:
        """A plain-dict copy (handy for assertions and reports)."""
        return {
            "spawned": self.spawned,
            "executed": self.executed,
            "failed": self.failed,
            "stolen": self.stolen,
        }


class Task:
    """One lightweight thread: a callable, its arguments and its future."""

    __slots__ = (
        "task_id",
        "function",
        "args",
        "kwargs",
        "promise",
        "_state",
        "_state_lock",
        "description",
    )

    def __init__(
        self,
        function: Callable[..., Any],
        *args: Any,
        description: str = "",
        **kwargs: Any,
    ) -> None:
        if not callable(function):
            raise RuntimeStateError(f"task function must be callable, got {function!r}")
        self.task_id = next(_task_ids)
        self.function = function
        self.args = args
        self.kwargs = kwargs
        self.promise: Promise[Any] = Promise()
        self._state = ThreadState.PENDING
        self._state_lock = threading.Lock()
        self.description = description or getattr(function, "__name__", "task")

    # -- state ---------------------------------------------------------------
    @property
    def state(self) -> ThreadState:
        """Current lifecycle state."""
        with self._state_lock:
            return self._state

    def _set_state(self, state: ThreadState) -> None:
        with self._state_lock:
            self._state = state

    # -- execution -----------------------------------------------------------
    def get_future(self) -> Future[Any]:
        """The future that will carry this task's result."""
        return self.promise.get_future()

    def run(self) -> None:
        """Execute the task, routing the result/exception into its promise."""
        self._set_state(ThreadState.ACTIVE)
        try:
            result = self.function(*self.args, **self.kwargs)
        except BaseException as exc:  # noqa: BLE001 - result channel
            self._set_state(ThreadState.FAILED)
            self.promise.set_exception(exc)
        else:
            self._set_state(ThreadState.TERMINATED)
            self.promise.set_value(result)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Task(id={self.task_id}, {self.description!r}, state={self.state.value})"
