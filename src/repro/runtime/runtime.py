"""Runtime lifecycle management.

HPX applications start the runtime (``hpx_main``), which owns the worker
threads, and shut it down at the end.  :class:`HPXRuntime` plays that role
here: entering the context installs a :class:`WorkStealingScheduler` with the
requested number of workers as the process default (so ``dataflow`` and the
parallel algorithms pick it up implicitly), and leaving it restores whatever
was installed before.
"""

from __future__ import annotations

import contextlib
from typing import Iterator, Optional

from repro.errors import RuntimeStateError
from repro.runtime.scheduler import (
    ImmediateScheduler,
    TaskScheduler,
    WorkStealingScheduler,
    set_default_scheduler,
)

__all__ = ["HPXRuntime", "runtime_session"]


class HPXRuntime:
    """Context manager that owns the worker pool for a scope.

    Parameters
    ----------
    num_worker_threads:
        Number of OS workers.  ``0`` (or ``1`` with ``inline=True``) installs
        an :class:`ImmediateScheduler` instead of a pool, which is useful for
        deterministic tests.
    inline:
        Force inline execution regardless of ``num_worker_threads``.
    """

    def __init__(self, num_worker_threads: int = 4, *, inline: bool = False) -> None:
        if num_worker_threads < 0:
            raise RuntimeStateError("num_worker_threads must be non-negative")
        self.num_worker_threads = num_worker_threads
        self.inline = inline or num_worker_threads == 0
        self._scheduler: Optional[TaskScheduler] = None
        self._previous: Optional[TaskScheduler] = None
        self._running = False

    # -- lifecycle -------------------------------------------------------------
    def start(self) -> TaskScheduler:
        """Start the runtime and install its scheduler as the default."""
        if self._running:
            raise RuntimeStateError("runtime already running")
        if self.inline:
            self._scheduler = ImmediateScheduler()
        else:
            self._scheduler = WorkStealingScheduler(self.num_worker_threads)
        self._previous = set_default_scheduler(self._scheduler)
        self._running = True
        return self._scheduler

    def stop(self) -> None:
        """Drain outstanding work, shut down the pool, restore the previous default."""
        if not self._running:
            return
        assert self._scheduler is not None
        self._scheduler.shutdown(wait=True)
        if self._previous is not None:
            set_default_scheduler(self._previous)
        self._running = False

    # -- queries -----------------------------------------------------------------
    @property
    def scheduler(self) -> TaskScheduler:
        """The scheduler owned by this runtime (must be running)."""
        if not self._running or self._scheduler is None:
            raise RuntimeStateError("runtime is not running")
        return self._scheduler

    @property
    def is_running(self) -> bool:
        """True between :meth:`start` and :meth:`stop`."""
        return self._running

    def get_num_worker_threads(self) -> int:
        """Number of workers of the active scheduler."""
        return self.scheduler.num_workers

    # -- context protocol ----------------------------------------------------------
    def __enter__(self) -> "HPXRuntime":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


@contextlib.contextmanager
def runtime_session(num_worker_threads: int = 4, *, inline: bool = False) -> Iterator[HPXRuntime]:
    """Function-style alternative to ``with HPXRuntime(...)``."""
    runtime = HPXRuntime(num_worker_threads, inline=inline)
    runtime.start()
    try:
        yield runtime
    finally:
        runtime.stop()
