"""The ``dataflow`` construct and the ``unwrapped`` helper.

Figure 6 of the paper: "a dataflow object encapsulates a function
``F(in1, ..., inn)`` with *n* inputs from different data resources.  As soon
as the last input argument has been received, the function F is scheduled for
execution".  Because ``dataflow`` itself returns a future, chained calls form
a dependency tree that the runtime executes as dependencies are met -- this is
the mechanism that lets the redesigned OP2 interleave loops without global
barriers.

``unwrapped(f)`` mirrors ``hpx::util::unwrapped``: it marks ``f`` as wanting
the *values* of any future arguments rather than the futures themselves.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.errors import SchedulerError
from repro.runtime.future import Future, SharedFuture, when_all
from repro.runtime.policies import ExecutionPolicy
from repro.runtime.scheduler import TaskScheduler, get_default_scheduler

__all__ = ["dataflow", "unwrapped", "is_future"]

_FUTURE_TYPES = (Future, SharedFuture)


def is_future(value: Any) -> bool:
    """True if ``value`` is a future or shared future."""
    return isinstance(value, _FUTURE_TYPES)


class _Unwrapped:
    """Marker wrapper produced by :func:`unwrapped`."""

    __slots__ = ("function",)

    def __init__(self, function: Callable[..., Any]) -> None:
        if isinstance(function, _Unwrapped):
            function = function.function
        if not callable(function):
            raise SchedulerError(f"unwrapped() needs a callable, got {function!r}")
        self.function = function

    def __call__(self, *args: Any, **kwargs: Any) -> Any:
        return self.function(*args, **kwargs)


def unwrapped(function: Callable[..., Any]) -> _Unwrapped:
    """Mark ``function`` so dataflow passes future *values* instead of futures."""
    return _Unwrapped(function)


def dataflow(
    *args: Any,
    scheduler: Optional[TaskScheduler] = None,
    **kwargs: Any,
) -> Future[Any]:
    """Schedule ``func`` once all of its future inputs are ready.

    Call patterns (mirroring HPX):

    ``dataflow(func, *inputs)``
        ``func`` runs when every future in ``inputs`` is ready.
    ``dataflow(policy, func, *inputs)``
        Same, but a task policy forces asynchronous execution on the
        scheduler while a sequential policy runs the function inline on the
        thread that satisfies the last input.

    If ``func`` was wrapped with :func:`unwrapped`, future inputs are replaced
    by their values before the call; otherwise futures are passed through
    (shared futures as-is, plain futures converted to shared so the callee can
    ``get()`` them safely).

    Returns a future of the function's result.
    """
    if not args:
        raise SchedulerError("dataflow() needs at least a callable argument")

    policy: Optional[ExecutionPolicy] = None
    rest = list(args)
    if isinstance(rest[0], ExecutionPolicy):
        policy = rest.pop(0)
    if not rest:
        raise SchedulerError("dataflow() missing the callable argument")
    function = rest.pop(0)
    inputs = tuple(rest)

    wants_values = isinstance(function, _Unwrapped)
    callee: Callable[..., Any] = function.function if wants_values else function
    if not callable(callee):
        raise SchedulerError(f"dataflow() first argument must be callable, got {callee!r}")

    scheduler = scheduler if scheduler is not None else get_default_scheduler()
    asynchronous = policy.is_task if policy is not None else False

    # Convert plain futures into shared futures up-front so that waiting on
    # them here does not consume them before the callee sees them.
    prepared: list[Any] = []
    future_inputs: list[SharedFuture] = []
    for value in inputs:
        if isinstance(value, Future):
            shared = value.share()
            prepared.append(shared)
            future_inputs.append(shared)
        elif isinstance(value, SharedFuture):
            prepared.append(value)
            future_inputs.append(value)
        else:
            prepared.append(value)

    def invoke() -> Any:
        call_args = []
        for value in prepared:
            if wants_values and isinstance(value, SharedFuture):
                call_args.append(value.get())
            else:
                call_args.append(value)
        return callee(*call_args, **kwargs)

    gate = when_all(future_inputs)

    if asynchronous:
        result_future = gate.then(lambda _ready: scheduler.spawn(invoke))
        # ``then`` gives Future[Future[T]]; flatten it.
        return _flatten(result_future)
    return gate.then(lambda _ready: invoke())


def _flatten(future_of_future: Future[Any]) -> Future[Any]:
    """Flatten ``Future[Future[T]]`` into ``Future[T]``."""
    from repro.runtime.future import Promise

    promise: Promise[Any] = Promise()

    def outer_ready(outer: Future[Any]) -> None:
        try:
            inner = outer.get()
        except BaseException as exc:  # noqa: BLE001
            promise.set_exception(exc)
            return
        if not is_future(inner):
            promise.set_value(inner)
            return
        shared = inner.share() if isinstance(inner, Future) else inner

        def inner_ready(ready_inner: SharedFuture) -> None:
            try:
                promise.set_value(ready_inner.get())
            except BaseException as exc:  # noqa: BLE001
                promise.set_exception(exc)

        shared.then(inner_ready)

    future_of_future.then(outer_ready)
    return promise.get_future()
