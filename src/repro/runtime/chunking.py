"""Chunk-size policies, including the paper's ``persistent_auto_chunk_size``.

"In order to control the overheads introduced by the creation of each task,
it is important to control the amount of work performed by each task.  This
amount of work is known as the chunk size" (Section I).  HPX ships
``static_chunk_size``, ``auto_chunk_size``, ``guided_chunk_size`` and
``dynamic_chunk_size``; the paper adds ``persistent_auto_chunk_size``
(Section IV-B, Figure 12): the first loop of a chain of dependent loops picks
its chunk size automatically, and every *subsequent* loop picks a (generally
different) chunk size such that each of its chunks has the **same execution
time** as the first loop's chunks, so interleaved chunks never wait long for
their producers.

All policies answer one question -- "given ``total_iterations`` and
``num_workers`` (and, when known, the measured/modelled time per iteration),
what chunk sizes should the algorithm use?" -- through
:meth:`ChunkSizePolicy.chunk_sizes`.
"""

from __future__ import annotations

import math
import threading
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional

from repro.errors import ChunkingError

__all__ = [
    "ChunkSizePolicy",
    "StaticChunkSize",
    "AutoChunkSize",
    "GuidedChunkSize",
    "DynamicChunkSize",
    "PersistentChunkRegistry",
    "PersistentAutoChunkSize",
    "split_into_chunks",
]


def split_into_chunks(total_iterations: int, chunk_size: int) -> list[int]:
    """Split ``total_iterations`` into consecutive chunks of ``chunk_size``.

    The final chunk absorbs the remainder, so the sizes always sum to
    ``total_iterations``.
    """
    if total_iterations < 0:
        raise ChunkingError(f"total_iterations must be non-negative, got {total_iterations}")
    if chunk_size <= 0:
        raise ChunkingError(f"chunk_size must be positive, got {chunk_size}")
    if total_iterations == 0:
        return []
    full, remainder = divmod(total_iterations, chunk_size)
    sizes = [chunk_size] * full
    if remainder:
        sizes.append(remainder)
    return sizes


class ChunkSizePolicy(ABC):
    """Base class of every chunk-size policy."""

    #: short name used in reports and benchmark labels
    name: str = "chunker"

    @abstractmethod
    def chunk_sizes(
        self,
        total_iterations: int,
        num_workers: int,
        *,
        time_per_iteration: Optional[float] = None,
        loop_key: Optional[str] = None,
    ) -> list[int]:
        """Chunk sizes (summing to ``total_iterations``) for one loop execution."""

    # -- shared validation -----------------------------------------------------
    @staticmethod
    def _validate(total_iterations: int, num_workers: int) -> None:
        if total_iterations < 0:
            raise ChunkingError(
                f"total_iterations must be non-negative, got {total_iterations}"
            )
        if num_workers <= 0:
            raise ChunkingError(f"num_workers must be positive, got {num_workers}")


@dataclass
class StaticChunkSize(ChunkSizePolicy):
    """Fixed chunk size (``hpx::execution::static_chunk_size``)."""

    chunk_size: int = 1
    name: str = "static"

    def __post_init__(self) -> None:
        if self.chunk_size <= 0:
            raise ChunkingError(f"chunk_size must be positive, got {self.chunk_size}")

    def chunk_sizes(
        self,
        total_iterations: int,
        num_workers: int,
        *,
        time_per_iteration: Optional[float] = None,
        loop_key: Optional[str] = None,
    ) -> list[int]:
        self._validate(total_iterations, num_workers)
        return split_into_chunks(total_iterations, self.chunk_size)


@dataclass
class AutoChunkSize(ChunkSizePolicy):
    """HPX-style automatic chunking.

    When a per-iteration time is known the chunk size targets
    ``target_chunk_seconds`` per chunk (HPX measures the first iterations to
    do this); otherwise it falls back to ``chunks_per_worker`` chunks per
    worker, which keeps scheduling overhead bounded while leaving enough
    slack for load balancing.
    """

    chunks_per_worker: int = 4
    target_chunk_seconds: float = 80e-6
    min_chunk: int = 1
    name: str = "auto"

    def __post_init__(self) -> None:
        if self.chunks_per_worker <= 0:
            raise ChunkingError("chunks_per_worker must be positive")
        if self.target_chunk_seconds <= 0:
            raise ChunkingError("target_chunk_seconds must be positive")
        if self.min_chunk <= 0:
            raise ChunkingError("min_chunk must be positive")

    def determine_chunk_size(
        self,
        total_iterations: int,
        num_workers: int,
        time_per_iteration: Optional[float] = None,
    ) -> int:
        """The single chunk size this policy would use."""
        self._validate(total_iterations, num_workers)
        if total_iterations == 0:
            return self.min_chunk
        if time_per_iteration is not None and time_per_iteration > 0:
            measured = int(round(self.target_chunk_seconds / time_per_iteration))
        else:
            measured = math.ceil(total_iterations / (num_workers * self.chunks_per_worker))
        # Never produce fewer chunks than workers (that would idle workers),
        # and never more chunks than iterations.
        upper = max(self.min_chunk, math.ceil(total_iterations / num_workers))
        return max(self.min_chunk, min(measured, upper))

    def chunk_sizes(
        self,
        total_iterations: int,
        num_workers: int,
        *,
        time_per_iteration: Optional[float] = None,
        loop_key: Optional[str] = None,
    ) -> list[int]:
        size = self.determine_chunk_size(total_iterations, num_workers, time_per_iteration)
        return split_into_chunks(total_iterations, size)


@dataclass
class GuidedChunkSize(ChunkSizePolicy):
    """OpenMP-style guided scheduling: exponentially decreasing chunk sizes."""

    min_chunk: int = 1
    name: str = "guided"

    def __post_init__(self) -> None:
        if self.min_chunk <= 0:
            raise ChunkingError("min_chunk must be positive")

    def chunk_sizes(
        self,
        total_iterations: int,
        num_workers: int,
        *,
        time_per_iteration: Optional[float] = None,
        loop_key: Optional[str] = None,
    ) -> list[int]:
        self._validate(total_iterations, num_workers)
        sizes: list[int] = []
        remaining = total_iterations
        while remaining > 0:
            size = max(self.min_chunk, math.ceil(remaining / (2 * num_workers)))
            size = min(size, remaining)
            sizes.append(size)
            remaining -= size
        return sizes


@dataclass
class DynamicChunkSize(ChunkSizePolicy):
    """Fixed-size chunks handed out dynamically (``dynamic_chunk_size``).

    The chunk sizes are the same as :class:`StaticChunkSize`; the *assignment*
    of chunks to workers is the dynamic part and is a property of the
    executor/simulator, which inspects :attr:`dynamic_assignment`.
    """

    chunk_size: int = 256
    name: str = "dynamic"
    dynamic_assignment: bool = True

    def __post_init__(self) -> None:
        if self.chunk_size <= 0:
            raise ChunkingError(f"chunk_size must be positive, got {self.chunk_size}")

    def chunk_sizes(
        self,
        total_iterations: int,
        num_workers: int,
        *,
        time_per_iteration: Optional[float] = None,
        loop_key: Optional[str] = None,
    ) -> list[int]:
        self._validate(total_iterations, num_workers)
        return split_into_chunks(total_iterations, self.chunk_size)


class PersistentChunkRegistry:
    """Shared state of one ``persistent_auto_chunk_size`` chain.

    The first loop that asks for chunk sizes establishes the *persistent
    target chunk duration*; every later loop (with its own, different
    per-iteration time) sizes its chunks to hit the same duration.  The
    registry also remembers measured per-iteration times per loop so the pure
    runtime path (no cost model) can calibrate itself from the first chunk it
    executes.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._target_chunk_seconds: Optional[float] = None
        self._anchor_loop: Optional[str] = None
        self._measurements: dict[str, float] = {}

    # -- target management -------------------------------------------------------
    @property
    def target_chunk_seconds(self) -> Optional[float]:
        """The persistent per-chunk duration, or ``None`` before calibration."""
        with self._lock:
            return self._target_chunk_seconds

    @property
    def anchor_loop(self) -> Optional[str]:
        """The loop that established the persistent duration."""
        with self._lock:
            return self._anchor_loop

    def establish_target(self, loop_key: str, chunk_seconds: float) -> float:
        """Set the persistent duration if not already set; return the active one."""
        if chunk_seconds <= 0:
            raise ChunkingError("chunk duration must be positive")
        with self._lock:
            if self._target_chunk_seconds is None:
                self._target_chunk_seconds = chunk_seconds
                self._anchor_loop = loop_key
            return self._target_chunk_seconds

    def reset(self) -> None:
        """Forget the persistent duration and all measurements."""
        with self._lock:
            self._target_chunk_seconds = None
            self._anchor_loop = None
            self._measurements.clear()

    # -- measurements -----------------------------------------------------------
    def register_measurement(self, loop_key: str, time_per_iteration: float) -> None:
        """Record a measured/modelled per-iteration time for ``loop_key``."""
        if time_per_iteration <= 0:
            raise ChunkingError("time_per_iteration must be positive")
        with self._lock:
            self._measurements[loop_key] = time_per_iteration

    def measurement(self, loop_key: str) -> Optional[float]:
        """Previously recorded per-iteration time for ``loop_key``, if any."""
        with self._lock:
            return self._measurements.get(loop_key)


@dataclass
class PersistentAutoChunkSize(ChunkSizePolicy):
    """The paper's new execution-policy parameter (Section IV-B).

    Parameters
    ----------
    registry:
        Shared :class:`PersistentChunkRegistry` for the chain of dependent
        loops.  Loops sharing a registry share the persistent chunk duration.
    auto:
        The automatic policy used by the *first* loop to pick its chunk size.
    """

    registry: PersistentChunkRegistry
    auto: AutoChunkSize = None  # type: ignore[assignment]
    name: str = "persistent_auto"

    def __post_init__(self) -> None:
        if self.auto is None:
            self.auto = AutoChunkSize()

    def chunk_sizes(
        self,
        total_iterations: int,
        num_workers: int,
        *,
        time_per_iteration: Optional[float] = None,
        loop_key: Optional[str] = None,
    ) -> list[int]:
        self._validate(total_iterations, num_workers)
        if total_iterations == 0:
            return []
        key = loop_key or "<anonymous>"
        if time_per_iteration is None:
            time_per_iteration = self.registry.measurement(key)
        if time_per_iteration is None or time_per_iteration <= 0:
            # Without any timing information we cannot do better than auto;
            # the executor is expected to calibrate and re-ask.
            return self.auto.chunk_sizes(total_iterations, num_workers)

        target = self.registry.target_chunk_seconds
        if target is None:
            # First loop of the chain: chunk size chosen automatically, and its
            # duration becomes the persistent target (Fig. 12b, "chunk1").
            chunk = self.auto.determine_chunk_size(
                total_iterations, num_workers, time_per_iteration
            )
            target = self.registry.establish_target(key, chunk * time_per_iteration)
        chunk = max(1, int(round(target / time_per_iteration)))
        chunk = min(chunk, total_iterations)
        return split_into_chunks(total_iterations, chunk)
