"""Local Control Objects (LCOs).

The paper (Section III) describes LCOs as HPX's concurrency primitives:
"various types of mutexes, semaphores, spinlocks, condition variables and
barriers ... objects [that] have the ability to create, resume, or suspend a
thread when triggered by one or more events".  This module provides the LCOs
the reproduction uses directly (latch, barrier, counting semaphore, event,
and-gate, channel); plain mutexes/condition variables are Python built-ins
and are re-exported for completeness.
"""

from __future__ import annotations

import collections
import threading
from typing import Deque, Generic, Optional, TypeVar

from repro.errors import RuntimeStateError
from repro.runtime.future import Future, Promise

__all__ = [
    "Latch",
    "Barrier",
    "CountingSemaphore",
    "Event",
    "AndGate",
    "Channel",
    "Mutex",
    "ConditionVariable",
]

T = TypeVar("T")

#: HPX ``hpx::mutex`` -- Python's lock is the direct equivalent.
Mutex = threading.Lock
#: HPX ``hpx::condition_variable``.
ConditionVariable = threading.Condition


class Latch:
    """A single-use countdown latch (``hpx::latch``).

    Constructed with a count; :meth:`count_down` decrements it and
    :meth:`wait` blocks until the count reaches zero.
    """

    def __init__(self, count: int) -> None:
        if count < 0:
            raise RuntimeStateError(f"latch count must be non-negative, got {count}")
        self._count = count
        self._condition = threading.Condition()

    @property
    def count(self) -> int:
        """Remaining count."""
        with self._condition:
            return self._count

    def count_down(self, n: int = 1) -> None:
        """Decrement the latch by ``n`` (never below zero is allowed)."""
        if n <= 0:
            raise RuntimeStateError(f"count_down amount must be positive, got {n}")
        with self._condition:
            if n > self._count:
                raise RuntimeStateError(
                    f"count_down({n}) would drop latch below zero (count={self._count})"
                )
            self._count -= n
            if self._count == 0:
                self._condition.notify_all()

    def is_ready(self) -> bool:
        """True once the count has reached zero."""
        with self._condition:
            return self._count == 0

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the count reaches zero; returns readiness."""
        with self._condition:
            return self._condition.wait_for(lambda: self._count == 0, timeout)

    def arrive_and_wait(self, timeout: Optional[float] = None) -> bool:
        """Decrement by one, then wait for the latch to open."""
        self.count_down(1)
        return self.wait(timeout)


class Barrier:
    """A reusable thread barrier (``hpx::barrier``) with arrival counting."""

    def __init__(self, parties: int) -> None:
        if parties <= 0:
            raise RuntimeStateError(f"barrier needs a positive party count, got {parties}")
        self.parties = parties
        self._barrier = threading.Barrier(parties)
        self._generations = 0
        self._lock = threading.Lock()

    @property
    def generations(self) -> int:
        """How many times the barrier has been released."""
        with self._lock:
            return self._generations

    def arrive_and_wait(self, timeout: Optional[float] = None) -> int:
        """Wait at the barrier; returns the arrival index within this generation."""
        index = self._barrier.wait(timeout)
        if index == 0:
            with self._lock:
                self._generations += 1
        return index

    def abort(self) -> None:
        """Break the barrier, releasing waiters with an error."""
        self._barrier.abort()


class CountingSemaphore:
    """A counting semaphore (``hpx::counting_semaphore``)."""

    def __init__(self, initial: int = 0) -> None:
        if initial < 0:
            raise RuntimeStateError("semaphore initial count must be non-negative")
        self._semaphore = threading.Semaphore(initial)
        self._count = initial
        self._lock = threading.Lock()

    def signal(self, n: int = 1) -> None:
        """Release ``n`` units."""
        if n <= 0:
            raise RuntimeStateError("signal amount must be positive")
        with self._lock:
            self._count += n
        for _ in range(n):
            self._semaphore.release()

    def wait(self, n: int = 1, timeout: Optional[float] = None) -> bool:
        """Acquire ``n`` units; returns False on timeout (units re-released)."""
        if n <= 0:
            raise RuntimeStateError("wait amount must be positive")
        acquired = 0
        for _ in range(n):
            if not self._semaphore.acquire(timeout=timeout):
                for _ in range(acquired):
                    self._semaphore.release()
                return False
            acquired += 1
        with self._lock:
            self._count -= n
        return True

    def try_wait(self, n: int = 1) -> bool:
        """Non-blocking acquire of ``n`` units."""
        return self.wait(n, timeout=0)


class Event:
    """A manual-reset event LCO; waiting threads resume when it is set."""

    def __init__(self) -> None:
        self._event = threading.Event()

    def set(self) -> None:
        """Signal the event, resuming all waiters."""
        self._event.set()

    def reset(self) -> None:
        """Clear the event."""
        self._event.clear()

    def occurred(self) -> bool:
        """True if the event has been signalled."""
        return self._event.is_set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the event occurs; returns whether it did."""
        return self._event.wait(timeout)


class AndGate:
    """An and-gate LCO: a future that becomes ready after ``count`` triggers.

    Used internally by dataflow-style synchronisation: every input event
    calls :meth:`set`, and the gate's future becomes ready when all inputs
    have arrived.
    """

    def __init__(self, count: int) -> None:
        if count <= 0:
            raise RuntimeStateError(f"and-gate needs a positive input count, got {count}")
        self._remaining = count
        self._lock = threading.Lock()
        self._promise: Promise[int] = Promise()
        self._future = self._promise.get_future().share()

    def set(self, n: int = 1) -> None:
        """Signal ``n`` of the gate's inputs."""
        if n <= 0:
            raise RuntimeStateError("and-gate trigger amount must be positive")
        fire = False
        with self._lock:
            if self._remaining <= 0:
                raise RuntimeStateError("and-gate already open")
            self._remaining -= n
            if self._remaining < 0:
                raise RuntimeStateError("and-gate triggered more times than its count")
            fire = self._remaining == 0
        if fire:
            self._promise.set_value(0)

    def get_future(self):
        """Shared future that becomes ready when the gate opens."""
        return self._future


class Channel(Generic[T]):
    """A multi-producer / multi-consumer channel LCO.

    ``get`` returns a :class:`~repro.runtime.future.Future` for the next
    value; if a value is already buffered the future is ready immediately,
    otherwise it becomes ready when a producer calls :meth:`set`.  Closing the
    channel makes all pending and subsequent gets fail.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._values: Deque[T] = collections.deque()
        self._waiters: Deque[Promise[T]] = collections.deque()
        self._closed = False

    def set(self, value: T) -> None:
        """Send a value into the channel."""
        waiter: Optional[Promise[T]] = None
        with self._lock:
            if self._closed:
                raise RuntimeStateError("channel is closed")
            if self._waiters:
                waiter = self._waiters.popleft()
            else:
                self._values.append(value)
        if waiter is not None:
            waiter.set_value(value)

    def get(self) -> Future[T]:
        """Receive the next value as a future."""
        with self._lock:
            if self._values:
                value = self._values.popleft()
                promise: Promise[T] = Promise()
                promise.set_value(value)
                return promise.get_future()
            if self._closed:
                promise = Promise()
                promise.set_exception(RuntimeStateError("channel is closed"))
                return promise.get_future()
            promise = Promise()
            self._waiters.append(promise)
            return promise.get_future()

    def close(self) -> None:
        """Close the channel; pending waiters receive an error."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            waiters = list(self._waiters)
            self._waiters.clear()
        for waiter in waiters:
            waiter.set_exception(RuntimeStateError("channel is closed"))

    def __len__(self) -> int:
        with self._lock:
            return len(self._values)
