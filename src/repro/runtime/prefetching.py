"""The HPX data prefetcher (Section V of the paper).

``make_prefetcher_context(begin, end, distance_factor, *containers)`` builds a
:class:`PrefetcherContext`: an iterable over ``range(begin, end)`` whose
iterator, at every position ``i``, *prefetches the data of iteration
``i + distance_factor`` for every container* before the loop body runs.  Used
inside :func:`repro.runtime.algorithms.for_each` this combines thread-based
prefetching with asynchronous task execution, which is the paper's point.

CPython cannot issue real prefetch instructions, so the context does two
things instead:

* it *touches* the target elements of every container (a real memory access,
  which warms any actual hardware cache underneath and preserves the code
  path a C++ implementation would take), and
* it records every prefetch in a :class:`PrefetchStats` and, when a
  :class:`repro.sim.cache.CacheModel` is attached, replays the accesses into
  that model so the benchmark harness can measure hit/miss behaviour exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Optional, Sequence

import numpy as np

from repro.errors import PrefetchError
from repro.sim.cache import CacheModel

__all__ = ["PrefetchStats", "PrefetcherContext", "make_prefetcher_context"]


@dataclass
class PrefetchStats:
    """Counters kept by a :class:`PrefetcherContext`."""

    issued: int = 0
    useful: int = 0
    beyond_range: int = 0
    elements_touched: int = 0

    @property
    def accuracy(self) -> float:
        """Fraction of issued prefetches that targeted in-range iterations."""
        return self.useful / self.issued if self.issued else 0.0


class PrefetcherContext:
    """Iteration context that prefetches ahead for every container.

    Parameters
    ----------
    begin, end:
        Half-open iteration range.
    distance_factor:
        The paper's ``prefetch_distance_factor``: how many iterations ahead to
        prefetch.
    containers:
        The containers (NumPy arrays or sequences) accessed by the loop body.
        Containers may have different dtypes/shapes -- "it works with any data
        types even in a case of having different type for each container".
    cache:
        Optional cache model that observes both demand accesses and
        prefetches (used by tests and by the Figure 19/20 experiments).
    element_bytes:
        Override for the per-element size used for cache addressing when a
        container is not a NumPy array.
    """

    def __init__(
        self,
        begin: int,
        end: int,
        distance_factor: int,
        containers: Sequence[Any],
        *,
        cache: Optional[CacheModel] = None,
        element_bytes: int = 8,
    ) -> None:
        if end < begin:
            raise PrefetchError(f"invalid iteration range [{begin}, {end})")
        if distance_factor <= 0:
            raise PrefetchError(
                f"prefetch_distance_factor must be positive, got {distance_factor}"
            )
        if not containers:
            raise PrefetchError("a prefetcher context needs at least one container")
        for container in containers:
            if not hasattr(container, "__len__"):
                raise PrefetchError(f"container {container!r} has no length")
        self.begin = int(begin)
        self.end = int(end)
        self.distance_factor = int(distance_factor)
        self.containers = tuple(containers)
        self.cache = cache
        self.element_bytes = element_bytes
        self.stats = PrefetchStats()
        # Synthetic, non-overlapping base addresses per container so a cache
        # model sees distinct lines for distinct containers.
        self._base_addresses = self._assign_base_addresses()

    # -- basic container/range introspection ------------------------------------
    def __len__(self) -> int:
        return self.end - self.begin

    @property
    def num_containers(self) -> int:
        """Number of containers covered by the prefetcher."""
        return len(self.containers)

    def bytes_per_iteration(self) -> int:
        """Total bytes touched per iteration across all containers."""
        return sum(self._element_size(c) for c in self.containers)

    def _element_size(self, container: Any) -> int:
        if isinstance(container, np.ndarray):
            if container.ndim <= 1:
                return int(container.itemsize)
            return int(container.itemsize * int(np.prod(container.shape[1:])))
        return self.element_bytes

    def _assign_base_addresses(self) -> list[int]:
        bases = []
        cursor = 0
        alignment = 1 << 20  # 1 MiB per container region keeps regions disjoint
        for container in self.containers:
            bases.append(cursor)
            size = len(container) * self._element_size(container)
            cursor += ((size // alignment) + 2) * alignment
        return bases

    def _address(self, container_index: int, element_index: int) -> int:
        container = self.containers[container_index]
        return self._base_addresses[container_index] + element_index * self._element_size(
            container
        )

    # -- prefetch / access hooks ----------------------------------------------------
    def prefetch_for(self, index: int) -> int:
        """Issue prefetches for iteration ``index + distance_factor``.

        Returns the number of containers actually prefetched (0 when the
        target lies beyond the end of the range).
        """
        target = index + self.distance_factor
        self.stats.issued += self.num_containers
        if target >= self.end:
            self.stats.beyond_range += self.num_containers
            return 0
        self.stats.useful += self.num_containers
        for container_index, container in enumerate(self.containers):
            if target < len(container):
                # Touch the element: the closest Python analogue of a prefetch.
                _ = container[target]
            if self.cache is not None:
                self.cache.prefetch(self._address(container_index, target))
        return self.num_containers

    def record_access(self, index: int) -> None:
        """Record the demand accesses of iteration ``index`` (cache model only)."""
        self.stats.elements_touched += self.num_containers
        if self.cache is None:
            return
        for container_index in range(self.num_containers):
            self.cache.access(self._address(container_index, index))

    # -- iteration -------------------------------------------------------------------
    def indices(self) -> range:
        """The raw iteration range."""
        return range(self.begin, self.end)

    def __iter__(self) -> Iterator[int]:
        """Iterate over indices, prefetching ``distance_factor`` ahead."""
        for index in self.indices():
            self.prefetch_for(index)
            self.record_access(index)
            yield index

    def chunk(self, start: int, stop: int) -> Iterator[int]:
        """Iterate over a sub-range (used by chunked parallel for_each)."""
        if start < self.begin or stop > self.end or stop < start:
            raise PrefetchError(
                f"chunk [{start}, {stop}) outside context range [{self.begin}, {self.end})"
            )
        for index in range(start, stop):
            self.prefetch_for(index)
            self.record_access(index)
            yield index


def make_prefetcher_context(
    begin: int,
    end: int,
    distance_factor: int,
    *containers: Any,
    cache: Optional[CacheModel] = None,
) -> PrefetcherContext:
    """Factory mirroring ``hpx::parallel::make_prefetcher_context`` (Fig. 14)."""
    return PrefetcherContext(begin, end, distance_factor, containers, cache=cache)
