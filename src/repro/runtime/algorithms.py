"""Parallel algorithms: ``for_each`` and friends.

``hpx::parallel::for_each`` is the work-horse of the redesigned OP2 backend
(Fig. 8 and Fig. 14 of the paper): the outer block loop of every
``op_par_loop`` becomes a ``for_each`` over the block range, executed under an
execution policy, with chunk sizes supplied by a chunk-size policy and
optionally iterating through a prefetcher context.

The algorithms here work with:

* a plain ``range`` / sequence of items, or
* a :class:`~repro.runtime.prefetching.PrefetcherContext`, in which case every
  iteration prefetches ``distance_factor`` ahead for all containers.

Sequential policies run inline; parallel policies split the range into chunks
and execute the chunks on the scheduler; ``task`` policies return a future
instead of blocking.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Optional, Sequence, TypeVar, Union

from repro.errors import PolicyError
from repro.runtime.chunking import (
    AutoChunkSize,
    ChunkSizePolicy,
    PersistentAutoChunkSize,
)
from repro.runtime.future import Future, make_ready_future, when_all
from repro.runtime.policies import ExecutionPolicy
from repro.runtime.prefetching import PrefetcherContext
from repro.runtime.scheduler import TaskScheduler, get_default_scheduler

__all__ = ["for_each", "for_loop", "parallel_transform", "parallel_reduce"]

T = TypeVar("T")
R = TypeVar("R")

RangeLike = Union[range, Sequence[Any], PrefetcherContext]

#: number of leading iterations executed inline to calibrate
#: ``persistent_auto_chunk_size`` when no timing information exists yet
_CALIBRATION_ITERATIONS = 32


def _resolve_scheduler(policy: ExecutionPolicy, scheduler: Optional[TaskScheduler]) -> TaskScheduler:
    if scheduler is not None:
        return scheduler
    if policy.scheduler is not None:
        return policy.scheduler
    return get_default_scheduler()


def _resolve_chunker(policy: ExecutionPolicy, chunker: Optional[ChunkSizePolicy]) -> ChunkSizePolicy:
    if chunker is not None:
        return chunker
    if policy.chunker is not None:
        return policy.chunker
    return AutoChunkSize()


def _items_and_length(items: RangeLike) -> tuple[Any, int]:
    if isinstance(items, PrefetcherContext):
        return items, len(items)
    if isinstance(items, range):
        return items, len(items)
    if hasattr(items, "__len__") and hasattr(items, "__getitem__"):
        return items, len(items)
    raise PolicyError(
        "for_each needs a range, an indexable sequence or a PrefetcherContext; "
        f"got {type(items).__name__}"
    )


def _run_chunk(items: RangeLike, start: int, stop: int, body: Callable[[Any], Any]) -> None:
    """Execute ``body`` over positions ``[start, stop)`` of ``items``."""
    if isinstance(items, PrefetcherContext):
        for index in items.chunk(items.begin + start, items.begin + stop):
            body(index)
    elif isinstance(items, range):
        for index in items[start:stop]:
            body(index)
    else:
        for position in range(start, stop):
            body(items[position])


def _chunk_offsets(sizes: Sequence[int]) -> list[tuple[int, int]]:
    offsets = []
    cursor = 0
    for size in sizes:
        offsets.append((cursor, cursor + size))
        cursor += size
    return offsets


def for_each(
    policy: ExecutionPolicy,
    items: RangeLike,
    body: Callable[[Any], Any],
    *,
    chunker: Optional[ChunkSizePolicy] = None,
    scheduler: Optional[TaskScheduler] = None,
    loop_key: Optional[str] = None,
    time_per_iteration: Optional[float] = None,
) -> Optional[Future[None]]:
    """Apply ``body`` to every element of ``items`` under ``policy``.

    Parameters
    ----------
    policy:
        Execution policy (``seq``, ``par``, ``seq(task)``, ``par(task)``).
    items:
        ``range``, indexable sequence, or :class:`PrefetcherContext`.
    body:
        Callable applied to each element/index.
    chunker:
        Chunk-size policy; defaults to the policy's attached chunker or
        :class:`AutoChunkSize`.
    loop_key / time_per_iteration:
        Passed to the chunker, which matters for
        :class:`PersistentAutoChunkSize` -- when no timing information is
        available the algorithm measures a short calibration prefix inline and
        registers it with the chunker's registry.

    Returns ``None`` for synchronous policies and a ``Future[None]`` for
    ``task`` policies.
    """
    if not isinstance(policy, ExecutionPolicy):
        raise PolicyError(f"first argument must be an ExecutionPolicy, got {policy!r}")
    items, total = _items_and_length(items)
    chunker = _resolve_chunker(policy, chunker)
    scheduler = _resolve_scheduler(policy, scheduler)
    key = loop_key or getattr(body, "__name__", "for_each")

    if total == 0:
        return make_ready_future(None) if policy.is_task else None

    # -- sequential policies ----------------------------------------------------
    if not policy.parallel:
        def run_sequential() -> None:
            _run_chunk(items, 0, total, body)

        if policy.is_task:
            return scheduler.spawn(run_sequential)
        run_sequential()
        return None

    # -- persistent_auto_chunk_size calibration ----------------------------------
    start_offset = 0
    if (
        isinstance(chunker, PersistentAutoChunkSize)
        and time_per_iteration is None
        and chunker.registry.measurement(key) is None
    ):
        probe = min(_CALIBRATION_ITERATIONS, total)
        t0 = time.perf_counter()
        _run_chunk(items, 0, probe, body)
        elapsed = max(time.perf_counter() - t0, 1e-9)
        chunker.registry.register_measurement(key, elapsed / probe)
        time_per_iteration = elapsed / probe
        start_offset = probe

    remaining = total - start_offset
    sizes = chunker.chunk_sizes(
        remaining,
        scheduler.num_workers,
        time_per_iteration=time_per_iteration,
        loop_key=key,
    )
    offsets = [(s + start_offset, e + start_offset) for s, e in _chunk_offsets(sizes)]

    def spawn_chunks() -> list[Future[Any]]:
        futures = []
        for start, stop in offsets:
            futures.append(scheduler.spawn(_run_chunk, items, start, stop, body))
        return futures

    if policy.is_task:
        futures = spawn_chunks()
        gate = when_all(futures)
        return gate.then(lambda _f: None)

    futures = spawn_chunks()
    for future in futures:
        future.get()
    return None


def for_loop(
    policy: ExecutionPolicy,
    start: int,
    stop: int,
    body: Callable[[int], Any],
    **kwargs: Any,
) -> Optional[Future[None]]:
    """``for_each`` over ``range(start, stop)`` (mirrors ``hpx::for_loop``)."""
    return for_each(policy, range(start, stop), body, **kwargs)


def parallel_transform(
    policy: ExecutionPolicy,
    items: Sequence[T],
    transform: Callable[[T], R],
    **kwargs: Any,
) -> Union[list[R], Future[list[R]]]:
    """Apply ``transform`` to every item, preserving order.

    Synchronous policies return the list; ``task`` policies return a future of
    the list.
    """
    results: list[Any] = [None] * len(items)

    def body(position: int) -> None:
        results[position] = transform(items[position])

    outcome = for_each(policy, range(len(items)), body, **kwargs)
    if policy.is_task:
        assert isinstance(outcome, Future)
        return outcome.then(lambda _f: results)
    return results


def parallel_reduce(
    policy: ExecutionPolicy,
    items: Sequence[T],
    operation: Callable[[R, T], R],
    initial: R,
    **kwargs: Any,
) -> Union[R, Future[R]]:
    """Chunk-wise reduction.

    ``operation`` must be associative; each chunk folds locally and the chunk
    results are folded in chunk order, so the result is deterministic.
    """
    if not isinstance(policy, ExecutionPolicy):
        raise PolicyError(f"first argument must be an ExecutionPolicy, got {policy!r}")
    total = len(items)
    if total == 0:
        return make_ready_future(initial) if policy.is_task else initial

    chunker = _resolve_chunker(policy, kwargs.pop("chunker", None))
    scheduler = _resolve_scheduler(policy, kwargs.pop("scheduler", None))
    sizes = chunker.chunk_sizes(total, scheduler.num_workers)
    offsets = _chunk_offsets(sizes)

    def fold_chunk(start: int, stop: int) -> list[T]:
        # Return the chunk's items folded pairwise into a single-element list
        # to avoid needing a neutral element per chunk.
        iterator = iter(items[start:stop])
        accumulator: Any = next(iterator)
        for item in iterator:
            accumulator = operation(accumulator, item)
        return [accumulator]

    def combine(chunk_results: list[list[T]]) -> R:
        accumulator = initial
        for chunk_value in chunk_results:
            accumulator = operation(accumulator, chunk_value[0])
        return accumulator

    if not policy.parallel:
        chunk_results = [fold_chunk(s, e) for s, e in offsets]
        result = combine(chunk_results)
        return make_ready_future(result) if policy.is_task else result

    futures = [scheduler.spawn(fold_chunk, s, e) for s, e in offsets]
    if policy.is_task:
        gate = when_all(futures)

        def finish(_gate_future: Future[Any]) -> R:
            return combine([f.get() for f in futures])

        return gate.then(finish)
    chunk_results = [f.get() for f in futures]
    return combine(chunk_results)
