"""repro -- a Python reproduction of "Redesigning OP2 Compiler to Use HPX
Runtime Asynchronous Techniques" (Khatami, Kaiser, Ramanujam, IPPS 2017).

The package contains every system the paper builds on or contributes:

* :mod:`repro.runtime` -- an HPX-like asynchronous runtime (futures,
  dataflow, LCOs, execution policies, chunk-size policies, parallel
  ``for_each`` and the prefetching iterator);
* :mod:`repro.op2` -- the OP2 active library (sets, maps, dats, access
  descriptors, execution plans with colouring, ``op_par_loop``) with serial,
  OpenMP-style and HPX-style backends;
* :mod:`repro.engines` -- the pluggable execution-engine seam: the
  ``ExecutionEngine`` protocol, ``EngineCapabilities`` negotiation, the
  engine registry and the typed ``RunConfig`` contexts are built from;
* :mod:`repro.core` -- the paper's contribution: OP2 loops as dataflow nodes,
  chunk-granular loop interleaving, ``persistent_auto_chunk_size`` and the
  prefetcher integration;
* :mod:`repro.translator` -- the source-to-source translator emitting either
  OpenMP-style or HPX-style wrapper modules;
* :mod:`repro.sim` -- the discrete-event machine model used to time the
  experiments (see DESIGN.md for the substitution rationale);
* :mod:`repro.apps` -- the Airfoil CFD application used in the paper's
  evaluation plus two further example applications;
* :mod:`repro.bench` -- the harness regenerating every figure and table of
  the paper's evaluation section.

Quickstart
----------
>>> from repro.op2.context import active_context
>>> from repro.op2.backends import hpx_context
>>> from repro.apps.airfoil import generate_mesh, run_airfoil
>>> mesh = generate_mesh(60, 40)
>>> with active_context(hpx_context(num_threads=16,
...                                 chunking="persistent_auto",
...                                 prefetch=True)) as ctx:
...     result = run_airfoil(mesh, niter=2)
>>> report = ctx.report()     # simulated runtime, bandwidth, chunk stats
"""

from repro import config, errors
from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = ["config", "errors", "ReproError", "__version__"]
