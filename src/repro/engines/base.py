"""The execution-engine seam: protocol, capabilities and the typed run config.

The paper's portability argument is that OP2's parallel loops stay backend
agnostic when dispatch is routed through a runtime *executor* concept (HPX
dataflow executors) rather than baked-in backends.  :class:`ExecutionEngine`
is that seam for this reproduction: any object speaking the protocol below
can carry the chunk DAG -- the built-in thread pool and shared-memory process
engine do, and so can third-party substrates registered through
:func:`repro.engines.register_engine` without touching a single ``repro``
module.

Contexts never ask *which* engine is active; they ask what it *can do*.
:class:`EngineCapabilities` is that capability record: the HPX context
derives its strict-commit tracker edges, its global-write parent fallback and
its drain points from it, and the OpenMP baseline rejects engines by
capability (it needs a shared address space) instead of by name.

:class:`RunConfig` is the typed, frozen description of one run -- engine
name, worker count, chunking policy, prefetch settings -- that contexts are
built from (``hpx_context(config=RunConfig(...))``) and engine factories
receive.  It replaces the ``execution="..."`` string kwarg, which survives
only as a deprecation shim resolving through the engine registry.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Iterable,
    Optional,
    Protocol,
    Union,
    runtime_checkable,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.chunking import ChunkSizePolicy

__all__ = ["EngineCapabilities", "ExecutionEngine", "RunConfig"]


@dataclass(frozen=True)
class EngineCapabilities:
    """What an execution engine can (and must) do.

    Contexts branch on these flags -- never on engine names -- so a new
    substrate plugs in by describing itself truthfully:

    * ``deferred``: chunks really run on the engine.  ``False`` means the
      engine models a run whose numerics execute eagerly in the parent (the
      ``simulate`` engine); contexts then never submit anything.
    * ``shared_address_space``: workers see the parent's live arrays, so
      closure submission works and in-place scatters need no marshalling.
      The OpenMP baseline requires this (its defining property is the
      shared-memory barrier per loop).
    * ``needs_kernel_registry``: work must be dispatched by registered
      kernel *name* (closures cannot reach the workers); the loop runner
      then calls ``submit_loop_chunk(loop, ...)`` instead of
      ``submit_chunk(prepare, ...)``.
    * ``supports_global_write``: loops writing a non-reduction global
      (``OP_WRITE``/``OP_RW`` on ``op_arg_gbl``) can execute on the engine.
      When ``False`` the context drains the engine and runs such loops
      eagerly in the parent, which owns the live global value.
    * ``strict_commit_order``: chunk effects commit asynchronously, so the
      dependency tracker must add the strict-commit edges (program-order
      increment accumulation, reader ordering against displaced writer
      layers) that keep results deterministic and serial-matching.
    * ``separate_merge_channel``: merges travel on a channel of their own,
      so the chunk-ordered merge chain never queues behind a long compute
      (reported for observability; no context branches on it today).
    * ``compiled_kernels``: the engine wants loops lowered through the
      kernel pipeline (capture → parse → IR → emit) and dispatched as
      compiled slab functions; loops (or kernels) the pipeline cannot lower
      fall back to the interpreted prepare path per loop.
    * ``partitioned_dats``: dats live in per-shard partitions (owned + halo
      regions) rather than one coherent storage every task sees; the
      parent's view of a dat is only current after the engine's
      ``sync_parent_dats()`` ran, so contexts call it before any parent-side
      read or eager execution (drains, finish, global-write fallbacks).
    """

    deferred: bool = True
    shared_address_space: bool = True
    needs_kernel_registry: bool = False
    supports_global_write: bool = True
    strict_commit_order: bool = True
    separate_merge_channel: bool = False
    compiled_kernels: bool = False
    partitioned_dats: bool = False

    def describe(self) -> dict[str, bool]:
        """The capability record as a plain dict (used in backend reports)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


@runtime_checkable
class ExecutionEngine(Protocol):
    """The substrate protocol every execution engine implements.

    The dependency semantics are the :class:`~repro.runtime.pool_executor.
    PoolExecutor` contract: ``submit`` returns a task id, ``deps`` are ids of
    tasks that must complete first, the first task failure poisons the engine
    (skipped tasks fire ``on_skip``), and ``wait_all`` drains and re-raises.

    Engines with ``needs_kernel_registry=False`` receive chunks through
    ``submit_chunk`` (a closure pair); engines with it ``True`` receive the
    loop object through ``submit_loop_chunk`` and dispatch by kernel name.
    Either way the return value is ``(compute_id, merge_id)`` and ``after``
    chains the merge behind the previous chunk's merge, keeping commit order
    deterministic.
    """

    #: capability record contexts negotiate against
    capabilities: EngineCapabilities

    @property
    def is_shutdown(self) -> bool:
        """True once :meth:`shutdown` has been called."""
        ...

    def submit(
        self,
        fn: Callable[[], None],
        *,
        deps: Iterable[int] = (),
        on_skip: Optional[Callable[[], None]] = None,
    ) -> int:
        """Submit a plain task gated on ``deps``; returns its id."""
        ...

    def wait_all(self, timeout: Optional[float] = None) -> None:
        """Block until everything submitted completed; re-raise failures."""
        ...

    def cancel_pending(self) -> None:
        """Poison the engine: unstarted tasks are skipped."""
        ...

    def shutdown(self, wait: bool = True) -> None:
        """Stop the engine (draining first when ``wait`` is true)."""
        ...


@dataclass(frozen=True)
class RunConfig:
    """Typed description of one execution run.

    Replaces the ``execution=``/keyword pile: build one explicitly and pass
    ``hpx_context(config=RunConfig(...))`` (or keep using keywords -- the
    contexts assemble the same object from them).  Frozen so a config can be
    shared, hashed and ``dataclasses.replace``-swept by benchmarks.
    """

    #: registered engine name ("simulate", "threads", "processes", ...)
    engine: str = "simulate"
    #: worker threads/processes of the engine (and of the simulated machine)
    num_threads: int = 16
    #: chunk-size policy name or instance ("auto" / "persistent_auto")
    chunking: Union[str, "ChunkSizePolicy"] = "auto"
    #: enable the prefetching-iterator cost model
    prefetch: bool = False
    #: prefetch distance factor (``None`` = library default)
    prefetch_distance_factor: Optional[int] = None
    #: chunk-granular loop interleaving (the paper's Figs. 10-11)
    interleave: bool = True
    #: exact interval-set chunk summaries (``False`` = [min, max] hulls)
    interval_sets: bool = True
    #: futurized dataflow scheduling in the simulator (``False`` = barriers)
    async_tasking: bool = True
    #: prefer vectorized kernels where the loop provides them
    prefer_vectorized: bool = True

    def replace(self, **changes: Any) -> "RunConfig":
        """A copy with ``changes`` applied (sugar over ``dataclasses.replace``)."""
        import dataclasses

        return dataclasses.replace(self, **changes)
