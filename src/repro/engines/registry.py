"""Engine registry: name -> (factory, capabilities), mirroring ``register_backend``.

The registry is how a new execution substrate plugs into every context at
once: ``register_engine("my-engine", factory, capabilities=...)`` makes
``hpx_context(engine="my-engine")`` (and ``RunConfig(engine="my-engine")``)
work immediately, with the context deriving drain points, tracker strictness
and submission style from the advertised capabilities alone.

Factories receive the full :class:`~repro.engines.base.RunConfig` of the run
and return an object speaking the :class:`~repro.engines.base.ExecutionEngine`
protocol.  Capabilities must be known *without* instantiating the engine
(contexts negotiate at construction time, long before any pool spawns), so
they are registered alongside the factory -- either explicitly or as a
``capabilities`` attribute on the factory.

The legacy ``execution="simulate"|"threads"|"processes"`` kwarg resolves
through this registry via :func:`resolve_legacy_execution`, which emits the
single :class:`~repro.errors.ReproDeprecationWarning` the migration relies
on.
"""

from __future__ import annotations

import threading
import warnings
from typing import TYPE_CHECKING, Callable, Hashable, Optional

from repro.errors import OP2BackendError, ReproDeprecationWarning

if TYPE_CHECKING:  # pragma: no cover
    from repro.engines.base import EngineCapabilities, ExecutionEngine, RunConfig
    from repro.service.pool import SharedEnginePool
    from repro.session import Session

__all__ = [
    "register_engine",
    "unregister_engine",
    "available_engines",
    "engine_capabilities",
    "make_engine",
    "resolve_legacy_execution",
    "resolve_run_config",
]

#: engine name -> (factory(RunConfig) -> ExecutionEngine, EngineCapabilities)
_engine_factories: dict[str, tuple[Callable[..., "ExecutionEngine"], "EngineCapabilities"]] = {}
_registry_lock = threading.Lock()

#: the engine names every installation ships with
BUILTIN_ENGINES = ("simulate", "threads", "processes", "compiled", "sharded")


def register_engine(
    name: str,
    factory: Callable[..., "ExecutionEngine"],
    *,
    capabilities: Optional["EngineCapabilities"] = None,
    overwrite: bool = False,
) -> None:
    """Register ``factory`` as execution engine ``name``.

    ``capabilities`` may alternatively live on the factory itself (a
    ``capabilities`` attribute) -- convenient when the factory is the engine
    class.  Registering an existing name raises unless ``overwrite=True``.
    """
    # Load the builtins first, so registering one of their names collides
    # loudly here instead of being silently clobbered by their (lazy,
    # overwrite=True) self-registration later.
    _ensure_builtin_engines()
    if capabilities is None:
        capabilities = getattr(factory, "capabilities", None)
    if capabilities is None:
        raise OP2BackendError(
            f"engine {name!r} needs an EngineCapabilities record: pass "
            f"capabilities=... or set a 'capabilities' attribute on the factory"
        )
    with _registry_lock:
        if not overwrite and name in _engine_factories:
            raise OP2BackendError(f"execution engine {name!r} already registered")
        _engine_factories[name] = (factory, capabilities)


def unregister_engine(name: str) -> None:
    """Remove a registered engine (tests clean up their toy engines with this)."""
    if name in BUILTIN_ENGINES:
        raise OP2BackendError(f"built-in engine {name!r} cannot be unregistered")
    with _registry_lock:
        _engine_factories.pop(name, None)


def available_engines() -> list[str]:
    """Names of all registered execution engines, sorted."""
    _ensure_builtin_engines()
    with _registry_lock:
        return sorted(_engine_factories)


def _lookup(name: str) -> tuple[Callable[..., "ExecutionEngine"], "EngineCapabilities"]:
    _ensure_builtin_engines()
    with _registry_lock:
        entry = _engine_factories.get(name)
        if entry is None:
            raise OP2BackendError(
                f"unknown execution engine {name!r}; registered engines: "
                f"{sorted(_engine_factories)}"
            )
        return entry


def engine_capabilities(name: str) -> "EngineCapabilities":
    """Capability record of engine ``name``; the uniform unknown-engine error
    (an :class:`~repro.errors.OP2BackendError` listing the registered names)
    raises here, so every context fails identically."""
    return _lookup(name)[1]


def make_engine(
    config: "RunConfig",
    *,
    session: Optional["Session"] = None,
    pool: Optional["SharedEnginePool"] = None,
    tenant: Optional[Hashable] = None,
) -> "ExecutionEngine":
    """Instantiate the engine named by ``config.engine``, handing it the config.

    With ``session=`` the call goes through the session's warm pool instead:
    an engine already built for an equivalent config is returned live (its
    worker pool still up), and ownership moves to the session -- it is shut
    down at :meth:`~repro.session.Session.close`, not by the caller.

    With ``pool=`` the call *leases* from a process-wide
    :class:`~repro.service.SharedEnginePool` shared across sessions: the
    returned :class:`~repro.service.EngineLease` scopes draining and failure
    to the caller (keyed by ``tenant`` for fair scheduling) while the engine
    itself stays warm in the pool.  ``session=`` and ``pool=`` are mutually
    exclusive; ``tenant=`` requires ``pool=``.
    """
    if session is not None and pool is not None:
        raise OP2BackendError("pass session=... or pool=..., not both")
    if tenant is not None and pool is None:
        raise OP2BackendError("tenant= requires pool=")
    if session is not None:
        return session.engine(config)
    if pool is not None:
        return pool.lease(config, tenant=tenant)
    factory, _capabilities = _lookup(config.engine)
    return factory(config)


def resolve_legacy_execution(execution: str, *, stacklevel: int = 3) -> str:
    """Map the deprecated ``execution=`` kwarg onto an engine name.

    The value *is* the engine name (the legacy mode strings were adopted as
    the built-in engine names), so this only emits the deprecation warning;
    validation happens when the context resolves the name through the
    registry, giving unknown values the same uniform error as ``engine=``.
    """
    warnings.warn(
        f"the execution= kwarg is deprecated; pass engine={execution!r} or "
        f"config=RunConfig(engine={execution!r}) instead",
        ReproDeprecationWarning,
        stacklevel=stacklevel,
    )
    return execution


def resolve_run_config(
    config: Optional["RunConfig"] = None,
    *,
    execution: Optional[str] = None,
    stacklevel: int = 5,
    **overrides: object,
) -> "RunConfig":
    """Assemble the effective :class:`~repro.engines.base.RunConfig` of a context.

    The one shared implementation of the contexts' keyword plumbing: start
    from ``config`` (or a default ``RunConfig``), fold the deprecated
    ``execution=`` kwarg through the shim into an ``engine`` override, and
    apply every non-``None`` keyword override.  ``engine=`` and
    ``execution=`` together are rejected.
    """
    from repro.engines.base import RunConfig

    if config is None:
        config = RunConfig()
    if execution is not None:
        if overrides.get("engine") is not None:
            raise OP2BackendError(
                "pass engine=... or the deprecated execution=..., not both"
            )
        overrides["engine"] = resolve_legacy_execution(execution, stacklevel=stacklevel)
    effective = {key: value for key, value in overrides.items() if value is not None}
    return config.replace(**effective) if effective else config


#: True while the builtin module is importing (its self-registrations must
#: not recurse into _ensure_builtin_engines)
_builtins_loading = False


def _ensure_builtin_engines() -> None:
    """Import the built-in engines so they self-register."""
    global _builtins_loading
    if _builtins_loading:
        return
    with _registry_lock:
        ready = set(BUILTIN_ENGINES) <= _engine_factories.keys()
    if not ready:
        _builtins_loading = True
        try:
            from repro.engines import builtin  # noqa: F401  (self-registering)
        finally:
            _builtins_loading = False
