"""Pluggable execution engines for the OP2 chunk DAG.

The package turns the execution substrate behind ``op_par_loop`` into a
first-class, registry-backed seam (see :mod:`repro.engines.base` for the
design rationale):

>>> from repro.engines import RunConfig, register_engine, available_engines
>>> available_engines()
['processes', 'simulate', 'threads']
>>> from repro.op2.backends import hpx_context
>>> ctx = hpx_context(config=RunConfig(engine="threads", num_threads=8))

A custom engine is one ``register_engine`` call away::

    register_engine("my-engine", MyEngine,
                    capabilities=EngineCapabilities(strict_commit_order=True))

after which ``hpx_context(engine="my-engine")`` (and benchmark sweeps over
``RunConfig`` replacements) pick it up with no changes to any ``repro``
module.
"""

from repro.engines.base import EngineCapabilities, ExecutionEngine, RunConfig
from repro.engines.registry import (
    available_engines,
    engine_capabilities,
    make_engine,
    register_engine,
    resolve_legacy_execution,
    resolve_run_config,
    unregister_engine,
)

__all__ = [
    "EngineCapabilities",
    "ExecutionEngine",
    "RunConfig",
    "available_engines",
    "engine_capabilities",
    "make_engine",
    "register_engine",
    "resolve_legacy_execution",
    "resolve_run_config",
    "unregister_engine",
]
