"""The built-in execution engines, self-registered on import.

* ``simulate`` -- an :class:`InlineEngine` with ``deferred=False``: loop
  numerics execute eagerly in the parent and only the chunk DAG is modelled.
  Contexts never submit to it, but the registration keeps the name a
  first-class engine (capability negotiation, uniform errors, reports).
* ``threads`` -- the dependency-gated OS-thread pool
  (:class:`~repro.runtime.pool_executor.PoolExecutor`).
* ``processes`` -- the shared-memory multiprocess chunk engine
  (:class:`~repro.runtime.process_pool.ProcessChunkEngine`): no shared
  address space, kernel dispatch by registered name, no in-engine global
  writes, merges on a dedicated channel.
* ``sharded`` -- the distributed-memory variant of ``processes``
  (:class:`~repro.runtime.sharding.ShardedChunkEngine`): each set is
  partitioned into per-worker owned shards, every dat gets one segment per
  shard, and only the interval-exact halo runs a chunk is missing travel
  between address spaces, batched into the chunk RPCs.  Advertises
  ``partitioned_dats``, so contexts sync the parent's home view at drain
  points.
* ``compiled`` -- the same thread pool advertising ``compiled_kernels``:
  the loop pipeline lowers each kernel through the translator (capture →
  parse → IR → emit) and submits compiled slab functions instead of
  interpreted prepare closures, falling back per kernel when lowering
  fails.  With numba importable the slabs run ``njit(nogil=True)`` and
  genuinely overlap; otherwise they run as exec'd NumPy modules.

:class:`InlineEngine` doubles as the reference implementation of the engine
protocol for third parties: subclass (or copy) it, adjust the advertised
:class:`~repro.engines.base.EngineCapabilities`, and register the class with
:func:`~repro.engines.register_engine`.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Callable, Iterable, Optional

from repro.engines.base import EngineCapabilities, ExecutionEngine, RunConfig
from repro.engines.registry import register_engine
from repro.errors import RuntimeStateError
from repro.runtime.pool_executor import PoolExecutor
from repro.runtime.process_pool import ProcessChunkEngine

__all__ = [
    "InlineEngine",
    "SIMULATE_CAPABILITIES",
    "THREADS_CAPABILITIES",
    "PROCESSES_CAPABILITIES",
    "COMPILED_CAPABILITIES",
    "SHARDED_CAPABILITIES",
]

#: eager parent execution; only the DAG is modelled, so no strict edges
SIMULATE_CAPABILITIES = EngineCapabilities(
    deferred=False,
    strict_commit_order=False,
)

#: one interpreter, OS threads: closures work, globals live in-process
THREADS_CAPABILITIES = PoolExecutor.capabilities

#: worker processes on shared-memory segments
PROCESSES_CAPABILITIES = ProcessChunkEngine.capabilities

#: the thread pool, asking the pipeline for lowered slab kernels
COMPILED_CAPABILITIES = dataclasses.replace(THREADS_CAPABILITIES, compiled_kernels=True)

#: per-shard dat partitions with interval-exact halo exchange
SHARDED_CAPABILITIES = dataclasses.replace(PROCESSES_CAPABILITIES, partitioned_dats=True)


class InlineEngine:
    """Run every task immediately at submission, in submission order.

    Dependencies are trivially satisfied -- by the time a task is submitted,
    every id handed out earlier has already completed -- so the engine is the
    minimal correct implementation of the protocol: deterministic, identical
    to sequential chunked execution, and useful both as the ``simulate``
    registration and as a template for custom engines.
    """

    capabilities = SIMULATE_CAPABILITIES

    def __init__(self, config: Optional[RunConfig] = None) -> None:
        self.config = config
        self.trace_events: Optional[list[tuple[str, int]]] = None
        self._ids = itertools.count()
        self._shutdown = False
        #: number of tasks executed through the engine (tests observe this)
        self.executed = 0

    @property
    def num_workers(self) -> int:
        """Inline execution has exactly the submitting thread."""
        return 1

    @property
    def is_shutdown(self) -> bool:
        """True once :meth:`shutdown` has been called."""
        return self._shutdown

    def submit(
        self,
        fn: Callable[[], None],
        *,
        deps: Iterable[int] = (),
        on_skip: Optional[Callable[[], None]] = None,
    ) -> int:
        """Run ``fn`` now (its deps already completed); return its id."""
        if self._shutdown:
            raise RuntimeStateError("inline engine has been shut down")
        list(deps)  # ids of already-completed tasks: nothing to wait for
        fn()
        self.executed += 1
        return next(self._ids)

    def submit_chunk(
        self,
        prepare: Callable[[], Callable[[], None]],
        *,
        deps: Iterable[int] = (),
        after: Optional[int] = None,
    ) -> tuple[int, int]:
        """Compute then merge immediately; returns ``(compute_id, merge_id)``."""
        holder: dict[str, Callable[[], None]] = {}
        compute_id = self.submit(lambda: holder.__setitem__("merge", prepare()), deps=deps)
        merge_id = self.submit(lambda: holder.pop("merge")())
        return compute_id, merge_id

    def wait_all(self, timeout: Optional[float] = None) -> None:
        """Nothing is ever outstanding."""

    def cancel_pending(self) -> None:
        """Nothing is ever pending."""

    def shutdown(self, wait: bool = True) -> None:
        """Mark the engine closed (contexts re-create engines after finish)."""
        self._shutdown = True


def _make_simulate(config: RunConfig) -> ExecutionEngine:
    return InlineEngine(config)


def _make_threads(config: RunConfig) -> ExecutionEngine:
    return PoolExecutor(config.num_threads, name="hpx-chunk-pool", trace=True)


def _make_processes(config: RunConfig) -> ExecutionEngine:
    return ProcessChunkEngine(
        config.num_threads,
        name="hpx-chunk-procs",
        trace=True,
        prefer_vectorized=config.prefer_vectorized,
    )


def _make_compiled(config: RunConfig) -> ExecutionEngine:
    engine = PoolExecutor(config.num_threads, name="hpx-slab-pool", trace=True)
    engine.capabilities = COMPILED_CAPABILITIES
    return engine


def _make_sharded(config: RunConfig) -> ExecutionEngine:
    from repro.runtime.sharding import ShardedChunkEngine

    return ShardedChunkEngine(
        config.num_threads,
        name="hpx-chunk-shards",
        trace=True,
        prefer_vectorized=config.prefer_vectorized,
    )


register_engine("simulate", _make_simulate, capabilities=SIMULATE_CAPABILITIES, overwrite=True)
register_engine("threads", _make_threads, capabilities=THREADS_CAPABILITIES, overwrite=True)
register_engine("processes", _make_processes, capabilities=PROCESSES_CAPABILITIES, overwrite=True)
register_engine("compiled", _make_compiled, capabilities=COMPILED_CAPABILITIES, overwrite=True)
register_engine("sharded", _make_sharded, capabilities=SHARDED_CAPABILITIES, overwrite=True)
