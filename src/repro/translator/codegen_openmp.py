"""OpenMP-style wrapper generation (the stock OP2 code path).

For every loop site the generator emits a wrapper function whose role mirrors
the C code of Fig. 4 of the paper -- execute the loop under the
barrier-synchronised OpenMP-style backend -- plus a ``run_program`` driver
that installs an :class:`~repro.op2.backends.openmp.OpenMPContext` and invokes
the wrappers in program order.
"""

from __future__ import annotations

from repro.translator.codegen_common import emit_arg, emit_header, wrapper_name
from repro.translator.ir import ProgramIR

__all__ = ["generate_openmp_module"]


def generate_openmp_module(program: ProgramIR) -> str:
    """Generate the OpenMP-flavoured wrapper module source for ``program``."""
    lines = emit_header(program, flavour="openmp (fork/join, global barrier per loop)")
    lines += [
        "from repro.op2.context import active_context",
        "from repro.op2.backends.openmp import openmp_context",
        "",
        "",
    ]

    for site in program.loops:
        args = ",\n        ".join(emit_arg(arg) for arg in site.args)
        lines += [
            f"def {wrapper_name(site)}(kernel, iteration_set, dats, maps):",
            f'    """``#pragma omp parallel for`` wrapper for loop {site.name!r}.',
            "",
            "    The loop executes on the active context; a global barrier",
            "    follows it, as in the stock OP2 OpenMP code generator.",
            '    """',
            "    return op_par_loop(",
            "        kernel,",
            f'        "{site.name}",',
            "        iteration_set,",
            f"        {args},",
            "    )",
            "",
            "",
        ]

    lines += [
        "def run_program(kernels, sets, dats, maps, *, num_threads=16, machine=None,",
        "                block_size=256):",
        '    """Run every generated loop once, in program order, on the OpenMP backend.',
        "",
        "    ``kernels``, ``sets``, ``dats`` and ``maps`` are dictionaries keyed by",
        "    the variable names used in the original source.  Returns the backend",
        "    report (simulated runtime, bandwidth, ...).",
        '    """',
        "    context = openmp_context(num_threads=num_threads, machine=machine,",
        "                             block_size=block_size)",
        "    with active_context(context):",
    ]
    for site in program.loops:
        lines.append(
            f"        {wrapper_name(site)}(kernels[{site.kernel!r}], "
            f"sets[{site.iteration_set!r}], dats, maps)"
        )
    lines += [
        "    return context.report()",
        "",
    ]
    return "\n".join(lines)
