"""Slab emission: compile a :class:`KernelIR` into a gather-compute-scatter loop.

A *slab* is one self-contained function ``_slab(start, stop, *flat_args)``
executing a contiguous block of a parallel loop's iteration range for one
specific argument signature.  The emitted module is pure source text -- a
backend probe (``numba.njit(nogil=True)`` when numba is importable, plain
exec'd Python otherwise), the kernel's module imports, its baked constants,
its helpers, the kernel itself, and the slab driver -- so the same artifact
serves the live ``compiled`` engine and the offline translator.

Flat-argument convention, one group per ``op_arg`` (position ``j``):

* direct dat (any access): the full ``(set_size, dim)`` data array, the
  kernel sees row ``a{j}[i]`` (writes go straight through, like the
  vectorised direct slice);
* indirect READ: two arguments, the full data array and the block's map
  column, the kernel sees ``a{j}_data[a{j}_col[r]]`` where ``r`` is the
  block-local row counter;
* indirect INC: a zero-filled ``(n, dim)`` private buffer, row ``a{j}[r]``,
  scatter-added afterwards with ``np.add.at`` (identical to the vectorised
  path, hence bit-identical commit order);
* indirect WRITE/RW: a pre-gathered ``(n, dim)`` buffer, row ``a{j}[r]``,
  scattered back afterwards;
* global READ: the live global array;
* global INC/MIN/MAX: a neutral-element private buffer combined into the
  global afterwards.

Global WRITE/RW cannot be privatised (the kernel must observe prior
iterations) and is a lowering error here; the pipeline never dispatches such
loops to a slab, mirroring :meth:`ParLoop.prepare_block`'s serialisation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Optional

import numpy as np

from repro.errors import TranslatorLoweringError
from repro.op2.access import AccessMode
from repro.translator.analysis import KernelAccessAnalysis, analyse_kernel
from repro.translator.ir import KernelIR

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.op2.par_loop import ParLoop

__all__ = [
    "SlabArg",
    "KernelArtifact",
    "slab_signature",
    "emit_slab_module",
    "build_slab",
    "make_slab_prepare",
]

#: access-mode names a slab can privatise per argument kind
_GBL_UNSUPPORTED = ("WRITE", "RW")


@dataclass(frozen=True)
class SlabArg:
    """One position of a slab signature: how the loop feeds that argument."""

    kind: str  # "direct" | "indirect" | "gbl"
    access: str  # AccessMode name: "READ", "WRITE", "RW", "INC", "MIN", "MAX"
    dim: int
    dtype: str

    def __post_init__(self) -> None:
        if self.kind not in ("direct", "indirect", "gbl"):
            raise TranslatorLoweringError(f"unknown slab argument kind {self.kind!r}")


def slab_signature(loop: "ParLoop") -> tuple[SlabArg, ...]:
    """The slab signature of a loop: one :class:`SlabArg` per ``op_arg``."""
    signature = []
    for arg in loop.args:
        if arg.is_global:
            assert arg.gbl_data is not None
            signature.append(
                SlabArg("gbl", arg.access.name, arg.dim, str(arg.gbl_data.dtype))
            )
        else:
            assert arg.dat is not None
            kind = "direct" if arg.is_direct else "indirect"
            signature.append(SlabArg(kind, arg.access.name, arg.dim, str(arg.dat.dtype)))
    return tuple(signature)


@dataclass
class KernelArtifact:
    """A compiled slab for one (kernel fingerprint, slab signature) pair."""

    kernel_name: str
    fingerprint: str
    signature: tuple[SlabArg, ...]
    ir: KernelIR
    analysis: KernelAccessAnalysis
    module_source: str
    slab: Optional[Callable[..., None]]
    backend: str  # "numba" | "numpy" | "none" (IR-only artifact)
    namespace: dict[str, Any] = field(repr=False, default_factory=dict)

    def describe(self) -> dict[str, Any]:
        """Metadata for reports and cache introspection."""
        return {
            "kernel": self.kernel_name,
            "fingerprint": self.fingerprint,
            "backend": self.backend,
            "signature": [
                (s.kind, s.access, s.dim, s.dtype) for s in self.signature
            ],
            "features": sorted(self.ir.features),
        }


# ---------------------------------------------------------------------------
# Emission
# ---------------------------------------------------------------------------
_MODULE_HEADER = '''\
"""Auto-generated slab module for kernel {name!r}; do not edit."""
try:
    from numba import njit as _njit

    def _jit(fn):
        return _njit(nogil=True, cache=False)(fn)

    BACKEND = "numba"
except ImportError:

    def _jit(fn):
        return fn

    BACKEND = "numpy"

import numpy as _np
'''


def _emit_constant(name: str, value: Any) -> str:
    if isinstance(value, np.ndarray):
        # repr of a float list round-trips bit-exactly; rebuild with dtype
        return f"{name} = _np.array({value.tolist()!r}, dtype=_np.{value.dtype.name})"
    return f"{name} = {value!r}"


def _check_access(
    ir: KernelIR, analysis: KernelAccessAnalysis, signature: tuple[SlabArg, ...]
) -> None:
    """Cross-check the kernel's observed accesses against the declared modes."""
    if len(ir.params) != len(signature):
        raise TranslatorLoweringError(
            f"kernel {ir.name!r} takes {len(ir.params)} parameters but the loop "
            f"passes {len(signature)} arguments"
        )
    for param, slab_arg in zip(ir.params, signature):
        declared = AccessMode[slab_arg.access]
        if param in analysis.writes and not declared.writes:
            raise TranslatorLoweringError(
                f"kernel {ir.name!r} writes parameter {param!r} declared "
                f"{slab_arg.access}; refusing to compile a miscompiled slab"
            )


def emit_slab_module(ir: KernelIR, signature: tuple[SlabArg, ...]) -> str:
    """Generate the source of a self-contained slab module.

    Raises :class:`TranslatorLoweringError` when the signature cannot be
    privatised (global WRITE/RW) or contradicts the kernel's observed
    accesses.
    """
    analysis = analyse_kernel(ir)
    _check_access(ir, analysis, signature)

    params: list[str] = []
    views: list[str] = []
    for j, slab_arg in enumerate(signature):
        if slab_arg.kind == "direct":
            params.append(f"a{j}")
            views.append(f"a{j}[i]")
        elif slab_arg.kind == "indirect":
            if slab_arg.access == "READ":
                params.extend([f"a{j}_data", f"a{j}_col"])
                views.append(f"a{j}_data[a{j}_col[r]]")
            else:  # INC / WRITE / RW: private per-row buffer
                params.append(f"a{j}")
                views.append(f"a{j}[r]")
        else:  # gbl
            if slab_arg.access in _GBL_UNSUPPORTED:
                raise TranslatorLoweringError(
                    f"global {slab_arg.access} argument cannot be privatised into "
                    "a slab; the loop must stay on the interpreted path"
                )
            params.append(f"a{j}")
            views.append(f"a{j}")

    parts: list[str] = [_MODULE_HEADER.format(name=ir.name)]
    for alias, module in sorted(ir.all_modules().items()):
        parts.append(f"import {module} as {alias}" if alias != module else f"import {module}")
    constants = ir.all_constants()
    if constants:
        parts.append("")
        for name in sorted(constants):
            parts.append(_emit_constant(name, constants[name]))
    for source in ir.all_sources():
        parts.append("")
        parts.append("@_jit")
        parts.append(source)

    head = ", ".join(["start", "stop", *params])
    body_lines = [f"def _slab({head}):"]
    uses_row = any("[r]" in view for view in views)
    if uses_row:
        body_lines.append("    r = 0")
    body_lines.append("    for i in range(start, stop):")
    body_lines.append(f"        {ir.func_name}({', '.join(views)})")
    if uses_row:
        body_lines.append("        r += 1")
    parts.extend(["", "@_jit", "\n".join(body_lines), ""])
    return "\n".join(parts)


def build_slab(
    ir: KernelIR,
    signature: tuple[SlabArg, ...],
    *,
    fingerprint: Optional[str] = None,
) -> KernelArtifact:
    """Emit, exec and wrap a slab module into a :class:`KernelArtifact`.

    Any failure -- unsupported signature, emission bug, a backend rejecting
    the generated source -- surfaces as :class:`TranslatorLoweringError` so
    callers can fall back to the interpreted path uniformly.
    """
    module_source = emit_slab_module(ir, signature)
    namespace: dict[str, Any] = {"__name__": f"_repro_slab_{ir.func_name}"}
    try:
        exec(compile(module_source, f"<slab:{ir.name}>", "exec"), namespace)
    except TranslatorLoweringError:
        raise
    except Exception as exc:  # pragma: no cover - emitter bug surface
        raise TranslatorLoweringError(
            f"emitted slab module for kernel {ir.name!r} failed to execute: {exc}"
        ) from exc
    return KernelArtifact(
        kernel_name=ir.name,
        fingerprint=fingerprint or "",
        signature=signature,
        ir=ir,
        analysis=analyse_kernel(ir),
        module_source=module_source,
        slab=namespace["_slab"],
        backend=namespace["BACKEND"],
        namespace=namespace,
    )


# ---------------------------------------------------------------------------
# Runtime binding
# ---------------------------------------------------------------------------
def make_slab_prepare(
    loop: "ParLoop", artifact: KernelArtifact, start: int, stop: int
) -> Callable[[], None]:
    """Run the slab over ``[start, stop)``; return the merge closure.

    The staging and the returned merge mirror
    :meth:`ParLoop._prepare_vectorized` exactly -- private buffers for
    indirect INC/WRITE/RW and global reductions, committed in deterministic
    chunk order by the caller -- so slab execution composes with the same
    scheduling machinery as the interpreted paths.
    """
    from repro.op2.par_loop import ParLoop

    n = stop - start
    flat: list[np.ndarray] = []
    writebacks: list[tuple[Any, np.ndarray, np.ndarray]] = []
    reductions: list[tuple[Any, np.ndarray]] = []
    for arg in loop.args:
        if arg.is_global:
            assert arg.gbl_data is not None
            if arg.access.is_reduction:
                neutral = ParLoop._reduction_neutral(arg)
                flat.append(neutral)
                reductions.append((arg, neutral))
            else:  # READ; WRITE/RW never reaches a slab
                flat.append(arg.gbl_data)
            continue
        assert arg.dat is not None
        if arg.is_direct:
            flat.append(arg.dat.data)
            continue
        assert arg.map is not None
        targets = arg.map.values[start:stop, arg.map_index]  # type: ignore[union-attr]
        if arg.access is AccessMode.READ:
            flat.append(arg.dat.data)
            flat.append(targets)
        elif arg.access is AccessMode.INC:
            buffer = np.zeros((n, arg.dim), dtype=arg.dat.dtype)
            flat.append(buffer)
            writebacks.append((arg, targets, buffer))
        else:  # WRITE / RW
            buffer = arg.dat.data[targets].copy()
            flat.append(buffer)
            writebacks.append((arg, targets, buffer))

    artifact.slab(start, stop, *flat)

    def merge() -> None:
        for arg, targets, buffer in writebacks:
            if arg.access is AccessMode.INC:
                np.add.at(arg.dat.data, targets, buffer)
            else:
                arg.dat.data[targets] = buffer
        for arg, buffer in reductions:
            if arg.access is AccessMode.INC:
                arg.gbl_data += buffer
            elif arg.access is AccessMode.MIN:
                np.minimum(arg.gbl_data, buffer, out=arg.gbl_data)
            elif arg.access is AccessMode.MAX:
                np.maximum(arg.gbl_data, buffer, out=arg.gbl_data)

    return merge
