"""Inter-loop and intra-kernel dependence/access analysis.

OP2 loops declare how they access every dat; from the sequence of loop sites
the translator can therefore build the read-after-write / write-after-read /
write-after-write dependence graph between loops.  This is the static half of
the paper's design: the dependence graph decides which loops *may* be
interleaved by the HPX backend (independent loops run concurrently; dependent
loops overlap at chunk granularity).

:func:`analyse_kernel` is the same idea one layer down: it classifies how a
parsed kernel (:class:`~repro.translator.ir.KernelIR`) touches each of its
parameters -- read, written, or both -- which the slab emitter cross-checks
against the loop's declared access modes before compiling.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import TranslatorError, TranslatorLoweringError
from repro.translator.ir import KernelIR, ProgramIR

__all__ = [
    "Dependence",
    "LoopDependenceGraph",
    "analyse_dependences",
    "KernelAccessAnalysis",
    "analyse_kernel",
]


@dataclass(frozen=True)
class Dependence:
    """A dependence edge between two loop sites (indices into program order)."""

    producer: int
    consumer: int
    dat: str
    kind: str  # "raw", "war" or "waw"

    def __post_init__(self) -> None:
        if self.kind not in {"raw", "war", "waw"}:
            raise TranslatorError(f"unknown dependence kind {self.kind!r}")
        if self.producer >= self.consumer:
            raise TranslatorError("dependences must point forward in program order")


@dataclass
class LoopDependenceGraph:
    """Dependence edges between the loops of one program."""

    program: ProgramIR
    edges: list[Dependence] = field(default_factory=list)

    def dependences_of(self, consumer: int) -> list[Dependence]:
        """All edges whose consumer is the given loop index."""
        return [edge for edge in self.edges if edge.consumer == consumer]

    def producers_of(self, consumer: int) -> set[int]:
        """Indices of loops the given loop directly depends on."""
        return {edge.producer for edge in self.dependences_of(consumer)}

    def independent_pairs(self) -> list[tuple[int, int]]:
        """Pairs of loops with no direct dependence in either direction.

        These are the loops the paper says "can be executed without waiting
        for the previous loops to complete their tasks".
        """
        dependent = {(e.producer, e.consumer) for e in self.edges}
        pairs = []
        count = len(self.program.loops)
        for a in range(count):
            for b in range(a + 1, count):
                if (a, b) not in dependent:
                    pairs.append((a, b))
        return pairs

    def is_chainable(self, producer: int, consumer: int) -> bool:
        """True when the consumer loop reads a dat the producer loop wrote."""
        return any(
            edge.producer == producer and edge.consumer == consumer and edge.kind == "raw"
            for edge in self.edges
        )

    def critical_chain(self) -> list[int]:
        """The longest chain of directly dependent loops (by loop count)."""
        count = len(self.program.loops)
        best: list[list[int]] = [[i] for i in range(count)]
        for consumer in range(count):
            for producer in self.producers_of(consumer):
                candidate = best[producer] + [consumer]
                if len(candidate) > len(best[consumer]):
                    best[consumer] = candidate
        return max(best, key=len) if best else []


# ---------------------------------------------------------------------------
# Intra-kernel access analysis
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class KernelAccessAnalysis:
    """How one parsed kernel touches each of its parameters."""

    kernel: str
    params: tuple[str, ...]
    reads: frozenset[str]
    writes: frozenset[str]

    def access_of(self, param: str) -> str:
        """Classification of one parameter: ``read``/``write``/``rw``/``unused``."""
        if param not in self.params:
            raise TranslatorError(f"{param!r} is not a parameter of kernel {self.kernel!r}")
        reads = param in self.reads
        writes = param in self.writes
        if reads and writes:
            return "rw"
        if writes:
            return "write"
        if reads:
            return "read"
        return "unused"


class _AccessVisitor(ast.NodeVisitor):
    """Collect per-parameter read/write sets from a kernel's canonical AST.

    Writes flow through subscript stores (``out[0] = ...``, ``acc[i] += ...``);
    a bare rebind of a parameter name would silently sever the aliasing the
    slab convention depends on, so it is rejected outright.
    """

    def __init__(
        self,
        kernel_name: str,
        params: tuple[str, ...],
        helpers: dict[str, tuple[tuple[str, ...], "KernelAccessAnalysis"]],
    ) -> None:
        self.kernel_name = kernel_name
        self.params = set(params)
        self.helpers = helpers
        self.reads: set[str] = set()
        self.writes: set[str] = set()

    def _root_name(self, node: ast.expr) -> Optional[str]:
        while isinstance(node, ast.Subscript):
            node = node.value
        return node.id if isinstance(node, ast.Name) else None

    def _reject_rebind(self, name: str) -> None:
        if name in self.params:
            raise TranslatorLoweringError(
                f"kernel {self.kernel_name!r} rebinds parameter {name!r}; "
                "kernels must write through subscripts so argument aliasing survives"
            )

    def _handle_store(self, target: ast.expr) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._handle_store(element)
        elif isinstance(target, ast.Name):
            self._reject_rebind(target.id)
        elif isinstance(target, ast.Subscript):
            root = self._root_name(target)
            if root in self.params:
                self.writes.add(root)
                # index expressions are still reads; skip the root name itself
                node: ast.expr = target
                while isinstance(node, ast.Subscript):
                    self.visit(node.slice)
                    node = node.value
            else:
                self.visit(target)
        else:
            self.visit(target)

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            if node.id in self.params:
                self.reads.add(node.id)
        else:
            self._reject_rebind(node.id)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._handle_store(target)
        self.visit(node.value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        target = node.target
        if isinstance(target, ast.Subscript):
            root = self._root_name(target)
            if root in self.params:
                self.reads.add(root)
                self.writes.add(root)
                walk: ast.expr = target
                while isinstance(walk, ast.Subscript):
                    self.visit(walk.slice)
                    walk = walk.value
            else:
                self.visit(target)
        elif isinstance(target, ast.Name):
            self._reject_rebind(target.id)
        else:
            self.visit(target)
        self.visit(node.value)

    def visit_For(self, node: ast.For) -> None:
        self._handle_store(node.target)
        self.visit(node.iter)
        for statement in node.body + node.orelse:
            self.visit(statement)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name) and func.id in self.helpers:
            helper_params, helper_analysis = self.helpers[func.id]
            for helper_param, argument in zip(helper_params, node.args):
                root = self._root_name(argument)
                if root in self.params and isinstance(argument, ast.Name):
                    # propagate the helper's classification instead of
                    # conservatively marking the bare name as read
                    if helper_param in helper_analysis.reads:
                        self.reads.add(root)
                    if helper_param in helper_analysis.writes:
                        self.writes.add(root)
                else:
                    self.visit(argument)
        else:
            self.visit(func)
            for argument in node.args:
                self.visit(argument)


def _function_def(ir: KernelIR) -> ast.FunctionDef:
    tree = ast.parse(ir.source)
    for node in tree.body:
        if isinstance(node, ast.FunctionDef):
            return node
    raise TranslatorError(f"kernel IR {ir.name!r} holds no function definition")


def analyse_kernel(ir: KernelIR) -> KernelAccessAnalysis:
    """Classify how a parsed kernel reads/writes each of its parameters.

    Helper calls propagate their own analysis: a parameter forwarded by name
    to a helper inherits exactly the helper's classification for that slot.
    The slab emitter cross-checks the result against the loop's declared
    access modes -- a kernel that writes a parameter declared ``READ`` is a
    lowering error, not a silent miscompile.
    """
    helpers: dict[str, tuple[tuple[str, ...], KernelAccessAnalysis]] = {}
    for helper in ir.helpers:
        helpers[helper.func_name] = (helper.params, analyse_kernel(helper))
    func = _function_def(ir)
    visitor = _AccessVisitor(ir.name, ir.params, helpers)
    for statement in func.body:
        visitor.visit(statement)
    return KernelAccessAnalysis(
        kernel=ir.name,
        params=ir.params,
        reads=frozenset(visitor.reads),
        writes=frozenset(visitor.writes),
    )


def _last_writer(history: dict[str, int], dat: str) -> Optional[int]:
    return history.get(dat)


def analyse_dependences(program: ProgramIR) -> LoopDependenceGraph:
    """Build the loop dependence graph of a parsed program.

    The analysis walks the loops in program order keeping, per dat, the index
    of the last loop that wrote it and the indices of loops that have read it
    since; RAW, WAR and WAW edges are emitted accordingly.  Increment-on-
    increment (two consecutive loops both using ``OP_INC`` on the same dat)
    does **not** create an edge, matching the interleaving rules of the
    runtime (increments commute).
    """
    graph = LoopDependenceGraph(program=program)
    last_writer: dict[str, int] = {}
    last_writer_was_inc: dict[str, bool] = {}
    readers_since_write: dict[str, list[int]] = {}

    def add_edge(producer: int, consumer: int, dat: str, kind: str) -> None:
        if producer == consumer:
            return
        edge = Dependence(producer=producer, consumer=consumer, dat=dat, kind=kind)
        if edge not in graph.edges:
            graph.edges.append(edge)

    for index, loop in enumerate(program.loops):
        for arg in loop.args:
            if arg.is_global:
                continue
            dat = arg.dat
            writer = _last_writer(last_writer, dat)
            if arg.reads and not arg.access == "OP_INC":
                if writer is not None:
                    add_edge(writer, index, dat, "raw")
            if arg.access == "OP_INC":
                # increments only wait for non-increment producers
                if writer is not None and not last_writer_was_inc.get(dat, False):
                    add_edge(writer, index, dat, "raw")
            if arg.writes:
                for reader in readers_since_write.get(dat, []):
                    add_edge(reader, index, dat, "war")
                if writer is not None and arg.access != "OP_INC":
                    add_edge(writer, index, dat, "waw")
        # second pass: update state after edges are computed
        for arg in loop.args:
            if arg.is_global:
                continue
            dat = arg.dat
            if arg.writes:
                if arg.access == "OP_INC" and last_writer_was_inc.get(dat, False):
                    # extend the accumulation; keep the earliest writer index
                    pass
                else:
                    last_writer[dat] = index
                    last_writer_was_inc[dat] = arg.access == "OP_INC"
                    readers_since_write[dat] = []
            elif arg.reads:
                readers_since_write.setdefault(dat, []).append(index)
    return graph
