"""Inter-loop dependence analysis.

OP2 loops declare how they access every dat; from the sequence of loop sites
the translator can therefore build the read-after-write / write-after-read /
write-after-write dependence graph between loops.  This is the static half of
the paper's design: the dependence graph decides which loops *may* be
interleaved by the HPX backend (independent loops run concurrently; dependent
loops overlap at chunk granularity).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import TranslatorError
from repro.translator.ir import ProgramIR

__all__ = ["Dependence", "LoopDependenceGraph", "analyse_dependences"]


@dataclass(frozen=True)
class Dependence:
    """A dependence edge between two loop sites (indices into program order)."""

    producer: int
    consumer: int
    dat: str
    kind: str  # "raw", "war" or "waw"

    def __post_init__(self) -> None:
        if self.kind not in {"raw", "war", "waw"}:
            raise TranslatorError(f"unknown dependence kind {self.kind!r}")
        if self.producer >= self.consumer:
            raise TranslatorError("dependences must point forward in program order")


@dataclass
class LoopDependenceGraph:
    """Dependence edges between the loops of one program."""

    program: ProgramIR
    edges: list[Dependence] = field(default_factory=list)

    def dependences_of(self, consumer: int) -> list[Dependence]:
        """All edges whose consumer is the given loop index."""
        return [edge for edge in self.edges if edge.consumer == consumer]

    def producers_of(self, consumer: int) -> set[int]:
        """Indices of loops the given loop directly depends on."""
        return {edge.producer for edge in self.dependences_of(consumer)}

    def independent_pairs(self) -> list[tuple[int, int]]:
        """Pairs of loops with no direct dependence in either direction.

        These are the loops the paper says "can be executed without waiting
        for the previous loops to complete their tasks".
        """
        dependent = {(e.producer, e.consumer) for e in self.edges}
        pairs = []
        count = len(self.program.loops)
        for a in range(count):
            for b in range(a + 1, count):
                if (a, b) not in dependent:
                    pairs.append((a, b))
        return pairs

    def is_chainable(self, producer: int, consumer: int) -> bool:
        """True when the consumer loop reads a dat the producer loop wrote."""
        return any(
            edge.producer == producer and edge.consumer == consumer and edge.kind == "raw"
            for edge in self.edges
        )

    def critical_chain(self) -> list[int]:
        """The longest chain of directly dependent loops (by loop count)."""
        count = len(self.program.loops)
        best: list[list[int]] = [[i] for i in range(count)]
        for consumer in range(count):
            for producer in self.producers_of(consumer):
                candidate = best[producer] + [consumer]
                if len(candidate) > len(best[consumer]):
                    best[consumer] = candidate
        return max(best, key=len) if best else []


def _last_writer(history: dict[str, int], dat: str) -> Optional[int]:
    return history.get(dat)


def analyse_dependences(program: ProgramIR) -> LoopDependenceGraph:
    """Build the loop dependence graph of a parsed program.

    The analysis walks the loops in program order keeping, per dat, the index
    of the last loop that wrote it and the indices of loops that have read it
    since; RAW, WAR and WAW edges are emitted accordingly.  Increment-on-
    increment (two consecutive loops both using ``OP_INC`` on the same dat)
    does **not** create an edge, matching the interleaving rules of the
    runtime (increments commute).
    """
    graph = LoopDependenceGraph(program=program)
    last_writer: dict[str, int] = {}
    last_writer_was_inc: dict[str, bool] = {}
    readers_since_write: dict[str, list[int]] = {}

    def add_edge(producer: int, consumer: int, dat: str, kind: str) -> None:
        if producer == consumer:
            return
        edge = Dependence(producer=producer, consumer=consumer, dat=dat, kind=kind)
        if edge not in graph.edges:
            graph.edges.append(edge)

    for index, loop in enumerate(program.loops):
        for arg in loop.args:
            if arg.is_global:
                continue
            dat = arg.dat
            writer = _last_writer(last_writer, dat)
            if arg.reads and not arg.access == "OP_INC":
                if writer is not None:
                    add_edge(writer, index, dat, "raw")
            if arg.access == "OP_INC":
                # increments only wait for non-increment producers
                if writer is not None and not last_writer_was_inc.get(dat, False):
                    add_edge(writer, index, dat, "raw")
            if arg.writes:
                for reader in readers_since_write.get(dat, []):
                    add_edge(reader, index, dat, "war")
                if writer is not None and arg.access != "OP_INC":
                    add_edge(writer, index, dat, "waw")
        # second pass: update state after edges are computed
        for arg in loop.args:
            if arg.is_global:
                continue
            dat = arg.dat
            if arg.writes:
                if arg.access == "OP_INC" and last_writer_was_inc.get(dat, False):
                    # extend the accumulation; keep the earliest writer index
                    pass
                else:
                    last_writer[dat] = index
                    last_writer_was_inc[dat] = arg.access == "OP_INC"
                    readers_since_write[dat] = []
            elif arg.reads:
                readers_since_write.setdefault(dat, []).append(index)
    return graph
