"""HPX-dataflow wrapper generation (the paper's redesigned code path).

This is the translator modification the paper describes: instead of emitting
``#pragma omp parallel for`` wrappers, every ``op_par_loop`` becomes a
dataflow node executed by the HPX backend, returning a (shared) future of its
output dat.  The generated ``run_program`` driver installs an
:class:`~repro.core.executor.HPXContext` configured with the requested
optimisations (chunking policy, prefetching, interleaving) and chains the
wrappers; the emitted module also records, as a comment block, the inter-loop
dependences found by the static analysis so a reader can see which loops the
runtime is allowed to interleave.
"""

from __future__ import annotations

from repro.translator.analysis import analyse_dependences
from repro.translator.codegen_common import emit_arg, emit_header, wrapper_name
from repro.translator.ir import ProgramIR

__all__ = ["generate_hpx_module"]


def generate_hpx_module(program: ProgramIR) -> str:
    """Generate the HPX-flavoured wrapper module source for ``program``."""
    graph = analyse_dependences(program)

    lines = emit_header(program, flavour="hpx (dataflow, futures, no global barriers)")
    lines += [
        "from repro.op2.context import active_context",
        "from repro.op2.backends.hpx import hpx_context",
        "",
        "# Inter-loop dependences discovered by static analysis (producer -> consumer):",
    ]
    if graph.edges:
        for edge in graph.edges:
            producer = program.loops[edge.producer].name
            consumer = program.loops[edge.consumer].name
            lines.append(f"#   {producer} -> {consumer}  [{edge.kind.upper()} on {edge.dat}]")
    else:
        lines.append("#   (none -- all loops are independent)")
    lines += ["", ""]

    for site in program.loops:
        args = ",\n        ".join(emit_arg(arg) for arg in site.args)
        lines += [
            f"def {wrapper_name(site)}(kernel, iteration_set, dats, maps):",
            f'    """Dataflow wrapper for loop {site.name!r}.',
            "",
            "    Under the HPX context this returns a shared future of the loop's",
            "    output dat (Fig. 8/9 of the paper); the runtime interleaves it",
            "    with other loops as far as the dependences above allow.",
            '    """',
            "    return op_par_loop(",
            "        kernel,",
            f'        "{site.name}",',
            "        iteration_set,",
            f"        {args},",
            "    )",
            "",
            "",
        ]

    lines += [
        "def run_program(kernels, sets, dats, maps, *, num_threads=16, machine=None,",
        "                chunking='persistent_auto', prefetch=True,",
        "                prefetch_distance_factor=15, interleave=True):",
        '    """Run every generated loop once, in program order, on the HPX backend.',
        "",
        "    Returns ``(futures, report)`` where ``futures`` maps loop names to the",
        "    shared futures of their output dats and ``report`` is the backend",
        "    report (simulated runtime, bandwidth, chunk statistics).",
        '    """',
        "    context = hpx_context(num_threads=num_threads, machine=machine,",
        "                          chunking=chunking, prefetch=prefetch,",
        "                          prefetch_distance_factor=prefetch_distance_factor,",
        "                          interleave=interleave)",
        "    futures = {}",
        "    with active_context(context):",
    ]
    for site in program.loops:
        lines.append(
            f"        futures[{site.name!r}] = {wrapper_name(site)}("
            f"kernels[{site.kernel!r}], sets[{site.iteration_set!r}], dats, maps)"
        )
    lines += [
        "    return futures, context.report()",
        "",
    ]
    return "\n".join(lines)
