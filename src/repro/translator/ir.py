"""Intermediate representation of ``op_par_loop`` call sites and kernels.

Two granularities share this module:

* the *program* level -- :class:`ProgramIR` / :class:`LoopSite` /
  :class:`ArgDescriptor`, produced by scanning an application source for
  ``op_par_loop`` call sites (the historical translator path); and
* the *kernel* level -- :class:`KernelIR`, produced by parsing one user
  kernel's Python source (:func:`repro.translator.parser.parse_kernel`).
  This is the representation the live ``compiled`` engine lowers through:
  capture → parse → KernelIR → analyze → emit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

from repro.errors import TranslatorError

__all__ = [
    "ArgDescriptor",
    "LoopSite",
    "ProgramIR",
    "KernelIR",
    "ACCESS_NAMES",
]

#: access spellings accepted in application sources
ACCESS_NAMES = {"OP_READ", "OP_WRITE", "OP_RW", "OP_INC", "OP_MIN", "OP_MAX"}


@dataclass(frozen=True)
class ArgDescriptor:
    """One ``op_arg_dat`` / ``op_arg_gbl`` occurrence inside a loop call."""

    dat: str
    index: int
    map_name: str  # "OP_ID" for direct arguments
    dim: int
    type_name: str
    access: str
    is_global: bool = False

    def __post_init__(self) -> None:
        if self.access not in ACCESS_NAMES:
            raise TranslatorError(f"unknown access mode {self.access!r}")
        if self.dim <= 0:
            raise TranslatorError(f"argument {self.dat!r} has non-positive dim {self.dim}")

    @property
    def is_direct(self) -> bool:
        """True for non-global arguments accessed through ``OP_ID``."""
        return not self.is_global and self.map_name == "OP_ID"

    @property
    def is_indirect(self) -> bool:
        """True for arguments accessed through a real map."""
        return not self.is_global and self.map_name != "OP_ID"

    @property
    def reads(self) -> bool:
        """True if the kernel observes the argument's previous value."""
        return self.access in {"OP_READ", "OP_RW", "OP_INC", "OP_MIN", "OP_MAX"}

    @property
    def writes(self) -> bool:
        """True if the kernel modifies the argument."""
        return self.access in {"OP_WRITE", "OP_RW", "OP_INC", "OP_MIN", "OP_MAX"}


@dataclass
class LoopSite:
    """One ``op_par_loop`` call site."""

    kernel: str
    name: str
    iteration_set: str
    args: list[ArgDescriptor]
    source_line: int = 0

    def __post_init__(self) -> None:
        if not self.args:
            raise TranslatorError(f"loop {self.name!r} has no arguments")

    @property
    def is_direct(self) -> bool:
        """True when no argument is accessed through a map."""
        return all(not arg.is_indirect for arg in self.args)

    @property
    def has_indirect_increment(self) -> bool:
        """True when some argument increments data through a map."""
        return any(arg.is_indirect and arg.access == "OP_INC" for arg in self.args)

    def dats_read(self) -> list[str]:
        """Names of dats whose previous value the loop observes."""
        return [a.dat for a in self.args if not a.is_global and a.reads]

    def dats_written(self) -> list[str]:
        """Names of dats the loop modifies."""
        return [a.dat for a in self.args if not a.is_global and a.writes]


@dataclass
class ProgramIR:
    """All loop sites of one application source, in program order."""

    source_name: str
    loops: list[LoopSite] = field(default_factory=list)
    sets: list[str] = field(default_factory=list)
    maps: list[str] = field(default_factory=list)
    dats: list[str] = field(default_factory=list)

    def __iter__(self) -> Iterator[LoopSite]:
        return iter(self.loops)

    def __len__(self) -> int:
        return len(self.loops)

    def loop(self, name: str) -> LoopSite:
        """Look a loop site up by name (first match)."""
        for site in self.loops:
            if site.name == name:
                return site
        raise TranslatorError(f"no loop named {name!r} in {self.source_name!r}")

    def kernels(self) -> list[str]:
        """Distinct kernel names in first-appearance order."""
        seen: dict[str, None] = {}
        for site in self.loops:
            seen.setdefault(site.kernel, None)
        return list(seen)


# ---------------------------------------------------------------------------
# Kernel-level IR
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class KernelIR:
    """The parsed, canonicalised form of one user kernel.

    ``source`` is the *canonical* source: annotations and decorators removed,
    module-level references folded -- free names that resolved to scalars or
    arrays have been baked into ``constants`` (attribute chains like
    ``_g.gam`` are rewritten to generated constant names), module references
    (``math``, ``np``) are recorded in ``modules``, and same-origin helper
    functions are recursively parsed into ``helpers``.  Emitting ``modules``
    imports + ``constants`` assignments + every helper's source + ``source``
    yields a self-contained module that reproduces the kernel's numerics.
    """

    #: the kernel name this IR was parsed for (diagnostics)
    name: str
    #: the function name to call in emitted code (the original ``def`` name)
    func_name: str
    #: positional parameter names, in order
    params: tuple[str, ...]
    #: canonical function source (``ast.unparse`` of the transformed tree)
    source: str
    #: alias -> module name of module-level references (``{"np": "numpy"}``)
    modules: Mapping[str, str]
    #: generated/free constant name -> baked Python value (scalars, ndarrays)
    constants: Mapping[str, Any]
    #: recursively parsed same-origin helper functions, in first-call order
    helpers: tuple["KernelIR", ...]
    #: structural features observed while parsing ("for", "if", "early-return", ...)
    features: frozenset[str] = frozenset()

    def all_modules(self) -> dict[str, str]:
        """Module imports of this kernel and every helper, merged."""
        merged: dict[str, str] = {}
        for helper in self.helpers:
            merged.update(helper.all_modules())
        merged.update(self.modules)
        return merged

    def all_constants(self) -> dict[str, Any]:
        """Baked constants of this kernel and every helper, merged."""
        merged: dict[str, Any] = {}
        for helper in self.helpers:
            merged.update(helper.all_constants())
        merged.update(self.constants)
        return merged

    def all_sources(self) -> list[str]:
        """Helper sources (dependency order) followed by the kernel source."""
        sources: list[str] = []
        seen: set[str] = set()
        for helper in self.helpers:
            for text in helper.all_sources():
                if text not in seen:
                    seen.add(text)
                    sources.append(text)
        if self.source not in seen:
            sources.append(self.source)
        return sources
