"""Parsing of ``op_par_loop`` call sites from application sources.

The OP2 translator scans C/C++ sources for ``op_decl_set``, ``op_decl_map``,
``op_decl_dat`` and ``op_par_loop`` calls; it does not need a full C parser
because the OP2 API restricts these calls to a simple, flat argument syntax.
This module follows the same approach: a tolerant, parenthesis-balanced
scanner that works on both C-style sources (``op_par_loop(save_soln, "save_
soln", cells, op_arg_dat(p_q, -1, OP_ID, 4, "double", OP_READ), ...)``) and
on Python sources using this library's API.
"""

from __future__ import annotations

import re
from typing import Iterator

from repro.errors import TranslatorParseError
from repro.translator.ir import ArgDescriptor, LoopSite, ProgramIR

__all__ = ["parse_source", "strip_comments", "split_top_level", "extract_calls"]

_CALL_NAMES = ("op_par_loop", "op_decl_set", "op_decl_map", "op_decl_dat")


def strip_comments(source: str) -> str:
    """Remove C, C++ and Python comments (string contents are preserved)."""
    source = re.sub(r"/\*.*?\*/", " ", source, flags=re.S)
    source = re.sub(r"//[^\n]*", " ", source)
    source = re.sub(r"(?m)^\s*#(?!include|pragma|define)[^\n]*", " ", source)
    return source


def split_top_level(argument_text: str) -> list[str]:
    """Split an argument list on commas not nested in parentheses or strings."""
    parts: list[str] = []
    depth = 0
    quote: str | None = None
    current: list[str] = []
    for char in argument_text:
        if quote is not None:
            if char == quote:
                quote = None
            current.append(char)
            continue
        if char in "\"'":
            quote = char
            current.append(char)
            continue
        if char in "([{":
            depth += 1
        elif char in ")]}":
            depth -= 1
            if depth < 0:
                raise TranslatorParseError(f"unbalanced parentheses in {argument_text!r}")
        if char == "," and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(char)
    if depth != 0 or quote is not None:
        raise TranslatorParseError(f"unbalanced parentheses or quotes in {argument_text!r}")
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return parts


def extract_calls(source: str, name: str) -> Iterator[tuple[int, str]]:
    """Yield ``(line_number, argument_text)`` for every ``name(...)`` call."""
    for match in re.finditer(rf"\b{re.escape(name)}\s*\(", source):
        start = match.end()
        depth = 1
        position = start
        while position < len(source) and depth:
            char = source[position]
            if char == "(":
                depth += 1
            elif char == ")":
                depth -= 1
            position += 1
        if depth:
            raise TranslatorParseError(f"unterminated {name}( starting at offset {match.start()}")
        line = source.count("\n", 0, match.start()) + 1
        yield line, source[start : position - 1]


def _unquote(token: str) -> str:
    token = token.strip()
    if len(token) >= 2 and token[0] in "\"'" and token[-1] == token[0]:
        return token[1:-1]
    return token


def _parse_int(token: str, context: str) -> int:
    token = token.strip()
    try:
        return int(token)
    except ValueError as exc:
        raise TranslatorParseError(f"expected an integer in {context}, got {token!r}") from exc


def _parse_arg(text: str) -> ArgDescriptor:
    text = text.strip()
    if text.startswith("op_arg_gbl"):
        inner = text[text.index("(") + 1 : text.rindex(")")]
        fields = split_top_level(inner)
        if len(fields) != 4:
            raise TranslatorParseError(f"op_arg_gbl expects 4 arguments, got {len(fields)}: {text!r}")
        data, dim, type_name, access = fields
        return ArgDescriptor(
            dat=data.strip().lstrip("&"),
            index=-1,
            map_name="OP_ID",
            dim=_parse_int(dim, "op_arg_gbl dim"),
            type_name=_unquote(type_name),
            access=access.strip(),
            is_global=True,
        )
    if text.startswith("op_arg_dat"):
        inner = text[text.index("(") + 1 : text.rindex(")")]
        fields = split_top_level(inner)
        if len(fields) != 6:
            raise TranslatorParseError(f"op_arg_dat expects 6 arguments, got {len(fields)}: {text!r}")
        dat, index, map_name, dim, type_name, access = fields
        return ArgDescriptor(
            dat=dat.strip(),
            index=_parse_int(index, "op_arg_dat index"),
            map_name=map_name.strip(),
            dim=_parse_int(dim, "op_arg_dat dim"),
            type_name=_unquote(type_name),
            access=access.strip(),
        )
    raise TranslatorParseError(f"unrecognised loop argument: {text!r}")


def _parse_loop(line: int, argument_text: str) -> LoopSite:
    fields = split_top_level(argument_text)
    if len(fields) < 4:
        raise TranslatorParseError(
            f"op_par_loop at line {line} needs kernel, name, set and at least one argument"
        )
    kernel, loop_name, iteration_set = fields[0], _unquote(fields[1]), fields[2]
    args = [_parse_arg(field) for field in fields[3:]]
    return LoopSite(
        kernel=kernel.strip(),
        name=loop_name,
        iteration_set=iteration_set.strip(),
        args=args,
        source_line=line,
    )


def parse_source(source: str, *, source_name: str = "<string>") -> ProgramIR:
    """Parse an application source into a :class:`ProgramIR`.

    Only the OP2 API calls are interpreted; all other code is ignored, which
    is exactly what the original translator does.
    """
    cleaned = strip_comments(source)
    program = ProgramIR(source_name=source_name)

    for _line, text in extract_calls(cleaned, "op_decl_set"):
        fields = split_top_level(text)
        if fields:
            program.sets.append(_unquote(fields[-1]))
    for _line, text in extract_calls(cleaned, "op_decl_map"):
        fields = split_top_level(text)
        if fields:
            program.maps.append(_unquote(fields[-1]))
    for _line, text in extract_calls(cleaned, "op_decl_dat"):
        fields = split_top_level(text)
        if fields:
            program.dats.append(_unquote(fields[-1]))
    for line, text in extract_calls(cleaned, "op_par_loop"):
        program.loops.append(_parse_loop(line, text))

    if not program.loops:
        raise TranslatorParseError(f"{source_name}: no op_par_loop call sites found")
    return program
