"""Parsing of ``op_par_loop`` call sites and of single user kernels.

Two parsers live here:

* :func:`parse_source` -- the program-level scanner of the historical
  translator.  The OP2 translator scans C/C++ sources for ``op_decl_set``,
  ``op_decl_map``, ``op_decl_dat`` and ``op_par_loop`` calls; it does not
  need a full C parser because the OP2 API restricts these calls to a
  simple, flat argument syntax.  This module follows the same approach: a
  tolerant, parenthesis-balanced scanner that works on both C-style sources
  (``op_par_loop(save_soln, "save_soln", cells, op_arg_dat(p_q, -1, OP_ID,
  4, "double", OP_READ), ...)``) and on Python sources using this library's
  API.
* :func:`parse_kernel` -- the kernel-level parser of the live lowering
  pipeline.  It parses one *Python* elemental kernel (a function or its
  source text) into a :class:`~repro.translator.ir.KernelIR`: module
  references are recorded as imports, same-origin helper functions are
  recursively parsed, and free names / attribute chains that resolve to
  scalars or arrays (``_g.gam``, closure constants) are constant-folded so
  the canonical source is self-contained -- ready for the slab emitter.
"""

from __future__ import annotations

import ast
import builtins
import inspect
import re
import textwrap
import types
from typing import Any, Callable, Iterator, Optional, Union

import numpy as np

from repro.errors import TranslatorParseError
from repro.translator.ir import ArgDescriptor, KernelIR, LoopSite, ProgramIR

__all__ = [
    "parse_source",
    "parse_kernel",
    "strip_comments",
    "split_top_level",
    "extract_calls",
]

_CALL_NAMES = ("op_par_loop", "op_decl_set", "op_decl_map", "op_decl_dat")


def strip_comments(source: str) -> str:
    """Remove C, C++ and Python comments (string contents are preserved)."""
    source = re.sub(r"/\*.*?\*/", " ", source, flags=re.S)
    source = re.sub(r"//[^\n]*", " ", source)
    source = re.sub(r"(?m)^\s*#(?!include|pragma|define)[^\n]*", " ", source)
    return source


def split_top_level(argument_text: str) -> list[str]:
    """Split an argument list on commas not nested in parentheses or strings."""
    parts: list[str] = []
    depth = 0
    quote: str | None = None
    current: list[str] = []
    for char in argument_text:
        if quote is not None:
            if char == quote:
                quote = None
            current.append(char)
            continue
        if char in "\"'":
            quote = char
            current.append(char)
            continue
        if char in "([{":
            depth += 1
        elif char in ")]}":
            depth -= 1
            if depth < 0:
                raise TranslatorParseError(f"unbalanced parentheses in {argument_text!r}")
        if char == "," and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(char)
    if depth != 0 or quote is not None:
        raise TranslatorParseError(f"unbalanced parentheses or quotes in {argument_text!r}")
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return parts


def extract_calls(source: str, name: str) -> Iterator[tuple[int, str]]:
    """Yield ``(line_number, argument_text)`` for every ``name(...)`` call."""
    for match in re.finditer(rf"\b{re.escape(name)}\s*\(", source):
        start = match.end()
        depth = 1
        position = start
        while position < len(source) and depth:
            char = source[position]
            if char == "(":
                depth += 1
            elif char == ")":
                depth -= 1
            position += 1
        if depth:
            raise TranslatorParseError(f"unterminated {name}( starting at offset {match.start()}")
        line = source.count("\n", 0, match.start()) + 1
        yield line, source[start : position - 1]


def _unquote(token: str) -> str:
    token = token.strip()
    if len(token) >= 2 and token[0] in "\"'" and token[-1] == token[0]:
        return token[1:-1]
    return token


def _parse_int(token: str, context: str) -> int:
    token = token.strip()
    try:
        return int(token)
    except ValueError as exc:
        raise TranslatorParseError(f"expected an integer in {context}, got {token!r}") from exc


def _parse_arg(text: str) -> ArgDescriptor:
    text = text.strip()
    if text.startswith("op_arg_gbl"):
        inner = text[text.index("(") + 1 : text.rindex(")")]
        fields = split_top_level(inner)
        if len(fields) != 4:
            raise TranslatorParseError(f"op_arg_gbl expects 4 arguments, got {len(fields)}: {text!r}")
        data, dim, type_name, access = fields
        return ArgDescriptor(
            dat=data.strip().lstrip("&"),
            index=-1,
            map_name="OP_ID",
            dim=_parse_int(dim, "op_arg_gbl dim"),
            type_name=_unquote(type_name),
            access=access.strip(),
            is_global=True,
        )
    if text.startswith("op_arg_dat"):
        inner = text[text.index("(") + 1 : text.rindex(")")]
        fields = split_top_level(inner)
        if len(fields) != 6:
            raise TranslatorParseError(f"op_arg_dat expects 6 arguments, got {len(fields)}: {text!r}")
        dat, index, map_name, dim, type_name, access = fields
        return ArgDescriptor(
            dat=dat.strip(),
            index=_parse_int(index, "op_arg_dat index"),
            map_name=map_name.strip(),
            dim=_parse_int(dim, "op_arg_dat dim"),
            type_name=_unquote(type_name),
            access=access.strip(),
        )
    raise TranslatorParseError(f"unrecognised loop argument: {text!r}")


def _parse_loop(line: int, argument_text: str) -> LoopSite:
    fields = split_top_level(argument_text)
    if len(fields) < 4:
        raise TranslatorParseError(
            f"op_par_loop at line {line} needs kernel, name, set and at least one argument"
        )
    kernel, loop_name, iteration_set = fields[0], _unquote(fields[1]), fields[2]
    args = [_parse_arg(field) for field in fields[3:]]
    return LoopSite(
        kernel=kernel.strip(),
        name=loop_name,
        iteration_set=iteration_set.strip(),
        args=args,
        source_line=line,
    )


def parse_source(source: str, *, source_name: str = "<string>") -> ProgramIR:
    """Parse an application source into a :class:`ProgramIR`.

    Only the OP2 API calls are interpreted; all other code is ignored, which
    is exactly what the original translator does.
    """
    cleaned = strip_comments(source)
    program = ProgramIR(source_name=source_name)

    for _line, text in extract_calls(cleaned, "op_decl_set"):
        fields = split_top_level(text)
        if fields:
            program.sets.append(_unquote(fields[-1]))
    for _line, text in extract_calls(cleaned, "op_decl_map"):
        fields = split_top_level(text)
        if fields:
            program.maps.append(_unquote(fields[-1]))
    for _line, text in extract_calls(cleaned, "op_decl_dat"):
        fields = split_top_level(text)
        if fields:
            program.dats.append(_unquote(fields[-1]))
    for line, text in extract_calls(cleaned, "op_par_loop"):
        program.loops.append(_parse_loop(line, text))

    if not program.loops:
        raise TranslatorParseError(f"{source_name}: no op_par_loop call sites found")
    return program


# ---------------------------------------------------------------------------
# Kernel-level parsing (capture → parse → KernelIR)
# ---------------------------------------------------------------------------
#: builtins a lowered kernel may call (numba supports all of these)
_ALLOWED_BUILTINS = frozenset({"abs", "min", "max", "range", "len", "float", "int", "bool"})

#: statement/expression forms outside the lowerable subset
_BANNED_NODES: tuple[tuple[type, str], ...] = tuple(
    (node_type, reason)
    for node_type, reason in [
        (ast.Lambda, "lambda expressions"),
        (ast.AsyncFunctionDef, "async functions"),
        (ast.ClassDef, "class definitions"),
        (ast.Import, "import statements"),
        (ast.ImportFrom, "import statements"),
        (ast.Global, "global declarations"),
        (ast.Nonlocal, "nonlocal declarations"),
        (ast.Try, "try/except blocks"),
        (getattr(ast, "TryStar", None), "try/except* blocks"),
        (ast.With, "with blocks"),
        (ast.AsyncWith, "async with blocks"),
        (ast.AsyncFor, "async for loops"),
        (ast.Yield, "generators"),
        (ast.YieldFrom, "generators"),
        (ast.Await, "await expressions"),
        (ast.Starred, "starred arguments"),
        (ast.ListComp, "comprehensions"),
        (ast.SetComp, "comprehensions"),
        (ast.DictComp, "comprehensions"),
        (ast.GeneratorExp, "generator expressions"),
        (ast.NamedExpr, "walrus assignments"),
        (ast.Delete, "del statements"),
        (ast.Assert, "assert statements"),
        (ast.Raise, "raise statements"),
        (ast.Match, "match statements"),
        (ast.JoinedStr, "f-strings"),
    ]
    if node_type is not None
)


def _is_scalar_constant(value: Any) -> bool:
    return isinstance(value, (bool, int, float, np.bool_, np.integer, np.floating))


def _as_python_scalar(value: Any) -> Union[bool, int, float]:
    if isinstance(value, (bool, np.bool_)):
        return bool(value)
    if isinstance(value, (int, np.integer)):
        return int(value)
    return float(value)


def _kernel_source(fn: Callable[..., Any], name: str) -> str:
    try:
        source = inspect.getsource(fn)
    except (OSError, TypeError) as exc:
        raise TranslatorParseError(
            f"kernel {name!r}: source of {fn!r} is unavailable "
            f"(define it in a file, or pass the source explicitly)"
        ) from exc
    return textwrap.dedent(source)


class _AttributeFolder(ast.NodeTransformer):
    """Fold ``Attribute`` chains rooted at resolvable non-module objects.

    ``_g.gam`` (a frozen-dataclass field), ``_g.qinf`` (an ndarray property)
    and friends become generated constant names; chains rooted at modules
    (``math.sqrt``) or locals are left untouched.
    """

    def __init__(self, parser: "_KernelParser") -> None:
        self.parser = parser

    def visit_Attribute(self, node: ast.Attribute) -> ast.AST:
        chain: list[str] = [node.attr]
        root = node.value
        while isinstance(root, ast.Attribute):
            chain.append(root.attr)
            root = root.value
        if not (isinstance(root, ast.Name) and isinstance(root.ctx, ast.Load)):
            return self.generic_visit(node)
        if root.id in self.parser.local_names:
            return self.generic_visit(node)
        found, value = self.parser.resolve(root.id)
        if not found or isinstance(value, types.ModuleType):
            # unresolvable roots error later in the free-name scan; module
            # attributes (math.sqrt) stay symbolic
            return self.generic_visit(node)
        chain.reverse()
        dotted = ".".join([root.id, *chain])
        try:
            for attr in chain:
                value = getattr(value, attr)
        except AttributeError as exc:
            raise TranslatorParseError(
                f"kernel {self.parser.kernel_name!r}: cannot evaluate "
                f"{dotted!r} for constant folding"
            ) from exc
        if isinstance(node.ctx, (ast.Store, ast.Del)):
            raise TranslatorParseError(
                f"kernel {self.parser.kernel_name!r}: assignment to module-"
                f"level attribute {dotted!r} is outside the lowerable subset"
            )
        return ast.copy_location(
            ast.Name(id=self.parser.fold_constant(dotted, value), ctx=ast.Load()),
            node,
        )


class _KernelParser:
    """One :func:`parse_kernel` invocation (helpers recurse through it)."""

    def __init__(
        self,
        source: str,
        *,
        kernel_name: str,
        globalns: dict[str, Any],
        closure: dict[str, Any],
        stack: tuple[int, ...],
        is_helper: bool = False,
    ) -> None:
        self.source = source
        self.kernel_name = kernel_name
        self.globalns = globalns
        self.closure = closure
        self.stack = stack
        self.is_helper = is_helper
        self.local_names: set[str] = set()
        self.modules: dict[str, str] = {}
        self.constants: dict[str, Any] = {}
        self.helpers: dict[str, KernelIR] = {}
        self.features: set[str] = set()
        self._fold_names: dict[str, str] = {}

    # -- name resolution ---------------------------------------------------------
    def resolve(self, name: str) -> tuple[bool, Any]:
        """``(found, value)`` for a free name: closure, then module globals."""
        if name in self.closure:
            return True, self.closure[name]
        if name in self.globalns:
            return True, self.globalns[name]
        return False, None

    def fold_constant(self, dotted: str, value: Any) -> str:
        """Bake an attribute-chain value; returns the generated constant name."""
        generated = self._fold_names.get(dotted)
        if generated is not None:
            return generated
        generated = "_k_" + re.sub(r"\W", "_", dotted).strip("_")
        while generated in self.constants or generated in self.local_names:
            generated += "_"
        self._bake(generated, value, dotted)
        self._fold_names[dotted] = generated
        return generated

    def _bake(self, name: str, value: Any, described_as: str) -> None:
        if _is_scalar_constant(value):
            self.constants[name] = _as_python_scalar(value)
        elif isinstance(value, np.ndarray):
            frozen = np.array(value)
            frozen.setflags(write=False)
            self.constants[name] = frozen
        else:
            raise TranslatorParseError(
                f"kernel {self.kernel_name!r}: {described_as!r} resolves to "
                f"{type(value).__name__}, which cannot be baked as a constant "
                f"(only scalars and numpy arrays can)"
            )

    # -- parsing -----------------------------------------------------------------
    def parse(self) -> KernelIR:
        try:
            tree = ast.parse(self.source)
        except SyntaxError as exc:
            raise TranslatorParseError(
                f"kernel {self.kernel_name!r}: source does not parse: {exc}"
            ) from exc
        functions = [n for n in tree.body if isinstance(n, ast.FunctionDef)]
        if len(functions) != 1:
            raise TranslatorParseError(
                f"kernel {self.kernel_name!r}: expected exactly one function "
                f"definition, found {len(functions)}"
            )
        func = functions[0]
        self._validate(func)
        params = self._collect_params(func)
        self._collect_locals(func)
        self._strip_annotations(func)
        func = _AttributeFolder(self).visit(func)
        self._resolve_free_names(func, params)
        func.decorator_list = []
        ast.fix_missing_locations(func)
        return KernelIR(
            name=self.kernel_name,
            func_name=func.name,
            params=params,
            source=ast.unparse(func),
            modules=dict(self.modules),
            constants=dict(self.constants),
            helpers=tuple(self.helpers.values()),
            features=frozenset(self.features),
        )

    def _validate(self, func: ast.FunctionDef) -> None:
        for node in ast.walk(func):
            for banned, reason in _BANNED_NODES:
                if isinstance(node, banned):
                    raise TranslatorParseError(
                        f"kernel {self.kernel_name!r}: {reason} are outside "
                        f"the lowerable subset (line {getattr(node, 'lineno', '?')})"
                    )
            if isinstance(node, ast.FunctionDef) and node is not func:
                raise TranslatorParseError(
                    f"kernel {self.kernel_name!r}: nested function definitions "
                    f"are outside the lowerable subset"
                )
            if isinstance(node, ast.Return) and node.value is not None and not self.is_helper:
                value = node.value
                if not (isinstance(value, ast.Constant) and value.value is None):
                    raise TranslatorParseError(
                        f"kernel {self.kernel_name!r}: kernels write through "
                        f"their arguments and must not return values"
                    )
            if isinstance(node, ast.Call) and node.keywords:
                raise TranslatorParseError(
                    f"kernel {self.kernel_name!r}: keyword arguments in calls "
                    f"are outside the lowerable subset"
                )
        for node in ast.walk(func):
            if isinstance(node, (ast.For, ast.While)):
                self.features.add("loop")
            elif isinstance(node, ast.If):
                self.features.add("branch")
            elif isinstance(node, ast.Return) and node is not func.body[-1]:
                self.features.add("early-return")

    def _collect_params(self, func: ast.FunctionDef) -> tuple[str, ...]:
        args = func.args
        if args.vararg or args.kwarg or args.kwonlyargs or args.defaults or args.kw_defaults:
            raise TranslatorParseError(
                f"kernel {self.kernel_name!r}: only plain positional "
                f"parameters are lowerable (no *args/**kwargs/defaults)"
            )
        return tuple(a.arg for a in [*args.posonlyargs, *args.args])

    def _collect_locals(self, func: ast.FunctionDef) -> None:
        self.local_names.update(a.arg for a in [*func.args.posonlyargs, *func.args.args])
        for node in ast.walk(func):
            if isinstance(node, ast.Name) and isinstance(node.ctx, (ast.Store, ast.Del)):
                self.local_names.add(node.id)

    def _resolve_free_names(self, func: ast.FunctionDef, params: tuple[str, ...]) -> None:
        for node in ast.walk(func):
            if not (isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load)):
                continue
            name = node.id
            if name in self.local_names or name in self.constants:
                continue
            found, value = self.resolve(name)
            if not found:
                if name in _ALLOWED_BUILTINS and hasattr(builtins, name):
                    continue
                raise TranslatorParseError(
                    f"kernel {self.kernel_name!r}: free name {name!r} is "
                    f"neither a lowerable builtin ({sorted(_ALLOWED_BUILTINS)}) "
                    f"nor resolvable in the kernel's defining scope"
                )
            if isinstance(value, types.ModuleType):
                self.modules[name] = value.__name__
            elif isinstance(value, types.FunctionType):
                self._parse_helper(name, value)
            else:
                self._bake(name, value, name)

    def _parse_helper(self, name: str, fn: types.FunctionType) -> None:
        if name in self.helpers:
            return
        self.features.add("helper-call")
        if id(fn) in self.stack:
            raise TranslatorParseError(
                f"kernel {self.kernel_name!r}: helper {name!r} is recursive, "
                f"which is outside the lowerable subset"
            )
        helper_ir = parse_kernel(
            fn,
            name=f"{self.kernel_name}.{name}",
            _stack=(*self.stack, id(fn)),
            _helper=True,
        )
        if helper_ir.func_name != name:
            raise TranslatorParseError(
                f"kernel {self.kernel_name!r}: helper {name!r} is an alias of "
                f"{helper_ir.func_name!r}; call helpers by their defining name"
            )
        self.helpers[name] = helper_ir

    @staticmethod
    def _strip_annotations(func: ast.FunctionDef) -> None:
        func.returns = None
        for arg in [*func.args.posonlyargs, *func.args.args]:
            arg.annotation = None
        for index, node in enumerate(func.body):
            if isinstance(node, ast.AnnAssign):
                if node.value is None:
                    raise TranslatorParseError(
                        "bare annotated declarations are outside the lowerable subset"
                    )
                func.body[index] = ast.copy_location(
                    ast.Assign(targets=[node.target], value=node.value), node
                )


def parse_kernel(
    kernel: Union[Callable[..., Any], str],
    *,
    name: Optional[str] = None,
    globalns: Optional[dict[str, Any]] = None,
    _stack: tuple[int, ...] = (),
    _helper: bool = False,
) -> KernelIR:
    """Parse one elemental kernel into a :class:`~repro.translator.ir.KernelIR`.

    ``kernel`` is either a plain Python function (its source is captured via
    :mod:`inspect` and free names resolve against its defining scope --
    closure cells first, then module globals) or raw source text containing
    exactly one ``def`` (free names then resolve against ``globalns``).

    The lowerable subset is straight-line numeric Python plus ``for``/
    ``while`` loops, ``if`` branches and early ``return``: no nested or
    recursive functions, comprehensions, try/with, keyword arguments,
    starred arguments or non-``None`` return values.  Free names must
    resolve to modules (recorded as imports), plain same-origin functions
    (recursively parsed as helpers), or scalar/ndarray values (baked as
    constants; attribute chains like ``_g.gam`` are folded the same way).
    Anything else raises :class:`~repro.errors.TranslatorParseError`.
    """
    closure: dict[str, Any] = {}
    if callable(kernel) and not isinstance(kernel, str):
        fn = kernel
        kernel_name = name or getattr(fn, "__name__", "<kernel>")
        if getattr(fn, "__name__", "") == "<lambda>":
            raise TranslatorParseError(
                f"kernel {kernel_name!r}: lambda kernels cannot be lowered"
            )
        source = _kernel_source(fn, kernel_name)
        resolved_globals = dict(getattr(fn, "__globals__", {}) or {})
        if globalns:
            resolved_globals.update(globalns)
        code = getattr(fn, "__code__", None)
        cells = getattr(fn, "__closure__", None)
        if code is not None and cells:
            for var, cell in zip(code.co_freevars, cells):
                try:
                    closure[var] = cell.cell_contents
                except ValueError:  # pragma: no cover - empty cell
                    pass
    else:
        source = textwrap.dedent(str(kernel))
        kernel_name = name or "<kernel>"
        resolved_globals = dict(globalns or {})
    parser = _KernelParser(
        source,
        kernel_name=kernel_name,
        globalns=resolved_globals,
        closure=closure,
        stack=_stack,
        is_helper=_helper,
    )
    return parser.parse()
