"""Shared helpers for the code generators.

Generated wrapper functions receive the application's objects through two
dictionaries -- ``dats`` (op_dats and global arrays, keyed by the variable
names used in the original source) and ``maps`` (op_maps) -- so the generated
module has no free variables and can be imported and executed as-is.
"""

from __future__ import annotations


from repro.errors import TranslatorCodegenError
from repro.translator.ir import ArgDescriptor, LoopSite, ProgramIR

__all__ = ["emit_header", "emit_arg", "wrapper_name", "validate_identifier"]


def validate_identifier(name: str) -> str:
    """Ensure a parsed token is usable as a Python identifier."""
    candidate = name.strip()
    if not candidate.isidentifier():
        raise TranslatorCodegenError(f"{candidate!r} is not a valid identifier")
    return candidate


def wrapper_name(loop: LoopSite) -> str:
    """Name of the generated wrapper function for a loop site."""
    return f"op_par_loop_{validate_identifier(loop.name)}"


def emit_header(program: ProgramIR, flavour: str) -> list[str]:
    """Common module docstring + imports of a generated wrapper module."""
    lines = [
        '"""Auto-generated OP2 wrapper module -- DO NOT EDIT.',
        "",
        f"Source: {program.source_name}",
        f"Flavour: {flavour}",
        f"Loops: {', '.join(site.name for site in program.loops)}",
        '"""',
        "",
        "from repro.op2.access import OP_ID, OP_READ, OP_WRITE, OP_RW, OP_INC, OP_MIN, OP_MAX",
        "from repro.op2.args import op_arg_dat, op_arg_gbl",
        "from repro.op2.par_loop import op_par_loop",
        "",
    ]
    return lines


def emit_arg(arg: ArgDescriptor) -> str:
    """Emit the ``op_arg_dat`` / ``op_arg_gbl`` expression for one argument.

    Data objects are looked up in the ``dats`` dictionary and maps in the
    ``maps`` dictionary of the enclosing wrapper function.
    """
    name = validate_identifier(arg.dat)
    if arg.is_global:
        return (
            f"op_arg_gbl(dats[{name!r}], {arg.dim}, "
            f"\"{arg.type_name}\", {arg.access})"
        )
    if arg.map_name == "OP_ID":
        map_expr = "OP_ID"
    else:
        map_expr = f"maps[{validate_identifier(arg.map_name)!r}]"
    return (
        f"op_arg_dat(dats[{name!r}], {arg.index}, {map_expr}, "
        f"{arg.dim}, \"{arg.type_name}\", {arg.access})"
    )
