"""The OP2 source-to-source translator.

OP2 is an *active library*: a translator scans the application source for
``op_par_loop`` call sites and generates, per loop, a platform-specific
parallel wrapper.  The original translator is written in MATLAB/Python and
emits C/OpenMP/CUDA; the paper modifies the Python translator so that it
emits HPX ``dataflow``/``for_each`` code instead (Section II-B: "its Python
source-to-source code translator is modified to automatically generate the
parallel loops using HPX library calls").

This package reproduces that pipeline in miniature:

* :mod:`repro.translator.ir` -- the loop-site intermediate representation;
* :mod:`repro.translator.parser` -- extraction of ``op_par_loop`` call sites
  from C-like application sources;
* :mod:`repro.translator.analysis` -- inter-loop dependence analysis from the
  access descriptors (what makes interleaving legal);
* :mod:`repro.translator.codegen_openmp` / :mod:`repro.translator.codegen_hpx`
  -- generation of runnable Python wrapper modules targeting the OpenMP-style
  and HPX-style backends of this library;
* :mod:`repro.translator.driver` -- the ``op2_translate`` entry point.

The same parser/IR/analysis stack also operates one level down, on single
*kernels* -- :func:`parse_kernel` → :class:`KernelIR` → :func:`analyse_kernel`
→ :mod:`repro.translator.slab` emission -- which is the lowering pipeline the
live ``compiled`` engine shares with the offline translator.
"""

from repro.translator.analysis import (
    KernelAccessAnalysis,
    LoopDependenceGraph,
    analyse_dependences,
    analyse_kernel,
)
from repro.translator.codegen_hpx import generate_hpx_module
from repro.translator.codegen_openmp import generate_openmp_module
from repro.translator.driver import TranslationResult, op2_translate
from repro.translator.ir import ArgDescriptor, KernelIR, LoopSite, ProgramIR
from repro.translator.parser import parse_kernel, parse_source
from repro.translator.slab import (
    KernelArtifact,
    SlabArg,
    build_slab,
    emit_slab_module,
    make_slab_prepare,
    slab_signature,
)

__all__ = [
    "ArgDescriptor",
    "LoopSite",
    "ProgramIR",
    "KernelIR",
    "parse_source",
    "parse_kernel",
    "LoopDependenceGraph",
    "analyse_dependences",
    "KernelAccessAnalysis",
    "analyse_kernel",
    "SlabArg",
    "KernelArtifact",
    "slab_signature",
    "emit_slab_module",
    "build_slab",
    "make_slab_prepare",
    "generate_openmp_module",
    "generate_hpx_module",
    "TranslationResult",
    "op2_translate",
]
