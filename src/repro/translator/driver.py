"""The ``op2_translate`` entry point.

Mirrors the command-line usage of the original ``op2.py`` translator: given
an application source, produce one generated module per requested flavour
(``openmp``, ``hpx``), optionally writing them next to the input file as
``<stem>_omp_kernels.py`` / ``<stem>_hpx_kernels.py``.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field
from typing import Iterable, Optional, Union

from repro.errors import TranslatorError
from repro.translator.analysis import LoopDependenceGraph, analyse_dependences
from repro.translator.codegen_hpx import generate_hpx_module
from repro.translator.codegen_openmp import generate_openmp_module
from repro.translator.ir import ProgramIR
from repro.translator.parser import parse_source

__all__ = ["TranslationResult", "op2_translate"]

_GENERATORS = {
    "openmp": generate_openmp_module,
    "hpx": generate_hpx_module,
}

_SUFFIXES = {
    "openmp": "_omp_kernels.py",
    "hpx": "_hpx_kernels.py",
}


@dataclass
class TranslationResult:
    """Everything produced by one translator invocation."""

    program: ProgramIR
    dependences: LoopDependenceGraph
    modules: dict[str, str] = field(default_factory=dict)
    written_files: list[pathlib.Path] = field(default_factory=list)

    def module_for(self, flavour: str) -> str:
        """The generated source of one flavour."""
        try:
            return self.modules[flavour]
        except KeyError as exc:
            raise TranslatorError(f"flavour {flavour!r} was not generated") from exc


def op2_translate(
    source: Union[str, pathlib.Path],
    *,
    flavours: Iterable[str] = ("openmp", "hpx"),
    output_dir: Optional[Union[str, pathlib.Path]] = None,
    source_name: Optional[str] = None,
) -> TranslationResult:
    """Translate an application source into backend wrapper modules.

    Parameters
    ----------
    source:
        Either the application source text or a path to a source file.
    flavours:
        Which code generators to run (``"openmp"``, ``"hpx"``).
    output_dir:
        When given, the generated modules are written there (named after the
        input file, or ``op2_program`` for in-memory sources).
    source_name:
        Overrides the name recorded in the IR for in-memory sources.
    """
    path: Optional[pathlib.Path] = None
    if isinstance(source, pathlib.Path) or (
        isinstance(source, str) and "\n" not in source and pathlib.Path(source).is_file()
    ):
        path = pathlib.Path(source)
        text = path.read_text()
        name = source_name or path.name
    else:
        text = str(source)
        name = source_name or "<string>"

    program = parse_source(text, source_name=name)
    dependences = analyse_dependences(program)
    result = TranslationResult(program=program, dependences=dependences)

    for flavour in flavours:
        if flavour not in _GENERATORS:
            raise TranslatorError(
                f"unknown flavour {flavour!r}; available: {sorted(_GENERATORS)}"
            )
        result.modules[flavour] = _GENERATORS[flavour](program)

    if output_dir is not None:
        directory = pathlib.Path(output_dir)
        directory.mkdir(parents=True, exist_ok=True)
        stem = path.stem if path is not None else "op2_program"
        for flavour, module_source in result.modules.items():
            target = directory / f"{stem}{_SUFFIXES[flavour]}"
            target.write_text(module_source)
            result.written_files.append(target)

    return result
